"""The :class:`PlacementService` façade — the front door for solving.

Every entry point in the repository (CLI verbs, the HTTP daemon, tests,
downstream libraries) funnels solve traffic through this class instead
of calling algorithm functions directly.  One ``solve`` call does, in
order:

1. fingerprint the request (content-addressed, see
   :mod:`repro.service.fingerprint`);
2. consult the LRU result cache — a hit returns immediately with
   ``diagnostics.cache_hit=True``;
3. resolve the solver: explicit name honoured verbatim, otherwise the
   documented auto-selection chain (:mod:`repro.service.selection`);
4. run it through the registry's uniform ``solve`` (validation
   included) and normalise *every* outcome — infeasible, inapplicable,
   budget-exhausted, crashed, invalid — into a typed
   :class:`~repro.service.schema.SolveResponse` with a structured
   error; request-level failures never raise;
5. cache deterministic outcomes (``ok`` and ``infeasible``) and record
   latency/status counters for :meth:`stats`.

The service is thread-safe end to end (locked cache, locked counters)
and owns a lazily started thread pool for :meth:`solve_many`, so the
threaded HTTP daemon and library callers share one implementation.

The service also fronts the online re-placement layer:
:meth:`PlacementService.start_dynamic` opens a
:class:`~repro.dynamic.DynamicPlacement` session and
:meth:`PlacementService.apply_events` folds change events into it while
keeping the result cache honest — entries keyed by the mutated
instance's old content fingerprint are invalidated (via an
``instance_fp -> request keys`` index) and the incremental repair
result is seeded under the new fingerprint.  See ``docs/service.md``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set

from ..core.bounds import lower_bound
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.validation import placement_violations
from ..instances.io import (
    canonical_json,
    instance_from_dict,
    instance_to_dict,
    placement_to_dict,
)
from ..runner import registry
from ..runner.result import SolveResult, Status
from ..runner.registry import UnknownSolverError
from ..storage import (
    CachePut,
    CacheRemove,
    DurabilityStats,
    LogRecord,
    RecoveryError,
    SessionClose,
    SessionEvents,
    SessionStart,
    StateStore,
)
from .cache import CacheStats, ResultCache
from .fingerprint import combine_fingerprint, instance_fingerprint
from .schema import Diagnostics, ErrorCode, ErrorInfo, SolveRequest, SolveResponse
from .selection import NoApplicableSolverError, select_solver

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..dynamic import ChangeEvent, DynamicPlacement, RepairOutcome

__all__ = ["PlacementService", "ServiceStats", "UnknownSessionError"]

#: Version tag of the snapshot ``state`` object the service produces.
STATE_SCHEMA_VERSION = 1


class UnknownSessionError(KeyError):
    """``apply_events`` named a dynamic session that does not exist."""

# Deterministic outcomes worth caching: re-solving cannot change them.
_CACHEABLE = (Status.OK, Status.INFEASIBLE)

#: The solver whose solves :meth:`PlacementService.solve_many` batches
#: through the array path (:mod:`repro.algorithms.batched`).
_BATCH_SOLVER = "multiple-nod-dp"

_STATUS_TO_CODE = {
    Status.INFEASIBLE: ErrorCode.INFEASIBLE,
    Status.INAPPLICABLE: ErrorCode.INAPPLICABLE,
    Status.BUDGET: ErrorCode.BUDGET_EXHAUSTED,
    Status.INVALID: ErrorCode.INVALID_PLACEMENT,
    Status.ERROR: ErrorCode.SOLVER_ERROR,
}


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _session_ordinal(session_id: str) -> int:
    """The ``<n>`` in ``dyn-<n>-<fp8>`` (0 for foreign id shapes).

    Replay uses it to fast-forward the session counter so ids minted
    after recovery never collide with recovered ones.
    """
    parts = session_id.split("-")
    try:
        return int(parts[1]) if len(parts) > 1 else 0
    except ValueError:
        return 0


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters for health checks and reports."""

    requests: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)
    latency_ms_mean: float = 0.0
    latency_ms_p50: float = 0.0
    latency_ms_p95: float = 0.0
    latency_ms_max: float = 0.0
    uptime_s: float = 0.0
    #: Durability counters when a :class:`~repro.storage.StateStore` is
    #: attached (``None`` for an in-memory-only service).
    durability: Optional[DurabilityStats] = None

    def to_wire(self) -> dict:
        wire = {
            "requests": self.requests,
            "by_status": dict(self.by_status),
            "cache": {
                "size": self.cache.size,
                "max_entries": self.cache.max_entries,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_rate": self.cache.hit_rate,
            },
            "latency_ms": {
                "mean": self.latency_ms_mean,
                "p50": self.latency_ms_p50,
                "p95": self.latency_ms_p95,
                "max": self.latency_ms_max,
            },
            "uptime_s": self.uptime_s,
        }
        if self.durability is not None:
            wire["durability"] = self.durability.to_wire()
        return wire


class PlacementService:
    """Typed, cached, concurrent solve service over the solver registry.

    Parameters
    ----------
    cache_size:
        Maximum entries in the LRU result cache (``0`` disables it).
    workers:
        Thread-pool width for :meth:`solve_many`; ``None`` lets the
        executor pick its default.  Single :meth:`solve` calls never
        touch the pool.
    default_budget:
        Budget applied when a request carries none (forwarded only to
        solvers that declare a budget kwarg).
    store:
        Optional :class:`~repro.storage.StateStore` making the service's
        mutable state — dynamic sessions and the result cache — durable:
        every mutation is write-ahead logged before being applied, and
        the constructor replays ``snapshot + log tail`` so a restarted
        service resumes exactly where the old one stopped.  Raises
        :class:`~repro.storage.RecoveryError` when the persisted state
        is structurally damaged.
    """

    # Sliding window of per-request service latencies kept for stats.
    _LATENCY_WINDOW = 2048

    def __init__(
        self,
        cache_size: int = 256,
        workers: Optional[int] = None,
        default_budget: Optional[int] = None,
        store: Optional[StateStore] = None,
    ) -> None:
        self._cache: ResultCache[SolveResponse] = ResultCache(cache_size)
        self._workers = workers
        self._default_budget = default_budget
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._requests = 0
        self._by_status: Dict[str, int] = {}
        self._latencies_ms: List[float] = []
        self._started = time.monotonic()
        # instance fingerprint -> request cache keys derived from it,
        # so dynamic-session mutations can invalidate precisely.
        self._fp_index: Dict[str, Set[str]] = {}
        self._sessions: Dict[str, "DynamicPlacement"] = {}
        self._session_seq = 0
        self._store: Optional[StateStore] = None
        self._replaying = False
        if store is not None:
            self._attach_store(store)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool and state store down (idempotent).

        The store is closed *without* a snapshot — closing is
        crash-equivalent by design, so recovery paths stay exercised.
        Call :meth:`persist_now` first for a clean handoff (the daemon's
        graceful-shutdown path does).
        """
        with self._lock:
            pool, self._pool = self._pool, None
            store, self._store = self._store, None
        if pool is not None:
            pool.shutdown(wait=True)
        if store is not None:
            store.close()

    def __enter__(self) -> "PlacementService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the core call -------------------------------------------------
    def solve(
        self,
        request: SolveRequest,
        *,
        _precomputed: Optional[SolveResult] = None,
    ) -> SolveResponse:
        """Answer one request; request-level failures never raise.

        Parameters
        ----------
        request:
            The typed request.  ``request.solver=None`` auto-selects
            from the documented fallback chain
            (:mod:`repro.service.selection`); ``request.budget=None``
            falls back to the service default;
            ``request.include_assignments=False`` strips the placement
            from the response (the cached entry keeps it).

        Returns
        -------
        SolveResponse
            Always well-formed: on success ``status="ok"`` with the
            checker-validated placement and diagnostics (cache hit,
            fingerprint, selection reason, solve/service latency); on
            failure the registry status plus a structured
            :class:`~repro.service.schema.ErrorInfo`.  Request-level
            problems (unknown solver, nothing applicable) come back as
            ``status="error"`` responses, never exceptions.
        """
        t0 = time.perf_counter()
        inst_fp = instance_fingerprint(request.instance)
        fp = combine_fingerprint(
            inst_fp, request.solver, request.budget, request.tenant
        )

        cached = self._cache.get(fp)
        if cached is not None:
            response = replace(
                cached,
                request_id=request.request_id,
                placement=(
                    cached.placement if request.include_assignments else None
                ),
                diagnostics=replace(
                    cached.diagnostics,
                    cache_hit=True,
                    service_ms=(time.perf_counter() - t0) * 1e3,
                    # Fresh dict per response: callers may mutate it,
                    # and the cached entry must stay pristine.
                    counters=dict(cached.diagnostics.counters),
                ),
            )
            self._record(response)
            return response

        response = self._compute(request, fp, t0, _precomputed)
        if response.status in _CACHEABLE:
            # Cache the full response (assignments included) so later
            # hits can honour include_assignments either way.  The
            # entry gets its own diagnostics/counters: the object
            # handed back to the caller is mutable, and caller edits
            # must not leak into future cache hits.
            entry = replace(
                response,
                diagnostics=replace(
                    response.diagnostics,
                    counters=dict(response.diagnostics.counters),
                ),
            )
            seq = self._log(
                CachePut(key=fp, instance_fp=inst_fp, response=entry.to_wire())
            )
            self._cache.put(fp, entry)
            self._index_key(inst_fp, fp)
            self._note_applied(seq)
        if not request.include_assignments:
            response = replace(response, placement=None)
        self._record(response)
        return response

    def _compute(
        self,
        request: SolveRequest,
        fp: str,
        t0: float,
        precomputed: Optional[SolveResult] = None,
    ) -> SolveResponse:
        diag = Diagnostics(fingerprint=fp)
        try:
            spec, reason = select_solver(request.instance, request.solver)
        except UnknownSolverError as exc:
            return self._failure(
                request, diag, ErrorCode.UNKNOWN_SOLVER, str(exc), t0
            )
        except NoApplicableSolverError as exc:
            return self._failure(
                request, diag, ErrorCode.NO_APPLICABLE_SOLVER, str(exc), t0
            )
        diag.selection = "explicit" if request.solver is not None else "auto"
        diag.selection_reason = reason

        if precomputed is not None and precomputed.solver == spec.name:
            # A batched solve_many already ran this request's solver;
            # the result was normalised through the same registry path
            # (checker validation included), so reuse it verbatim.
            result = precomputed
        else:
            budget = request.budget
            if budget is None:
                budget = self._default_budget
            result = registry.solve(
                spec.name,
                request.instance,
                budget=budget,
                keep_placement=True,
            )

        diag.solve_ms = result.wall_time * 1e3
        diag.counters = dict(result.counters)
        diag.service_ms = (time.perf_counter() - t0) * 1e3
        error = None
        if result.status != Status.OK:
            error = ErrorInfo(
                code=_STATUS_TO_CODE.get(result.status, ErrorCode.SOLVER_ERROR),
                message=result.error or result.status,
            )
        return SolveResponse(
            status=result.status,
            solver=spec.name,
            n_replicas=result.n_replicas,
            lower_bound=result.lower_bound,
            placement=result.placement,
            diagnostics=diag,
            error=error,
            request_id=request.request_id,
        )

    def _failure(
        self,
        request: SolveRequest,
        diag: Diagnostics,
        code: str,
        message: str,
        t0: float,
    ) -> SolveResponse:
        diag.service_ms = (time.perf_counter() - t0) * 1e3
        return SolveResponse(
            status=Status.ERROR,
            diagnostics=diag,
            error=ErrorInfo(code=code, message=message),
            request_id=request.request_id,
        )

    # -- conveniences --------------------------------------------------
    def solve_instance(
        self,
        instance: ProblemInstance,
        solver: Optional[str] = None,
        *,
        budget: Optional[int] = None,
        include_assignments: bool = True,
        request_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> SolveResponse:
        """:meth:`solve` without building the request by hand."""
        return self.solve(
            SolveRequest(
                instance=instance,
                solver=solver,
                budget=budget,
                include_assignments=include_assignments,
                request_id=request_id,
                tenant=tenant,
            )
        )

    def solve_many(
        self, requests: Iterable[SolveRequest]
    ) -> List[SolveResponse]:
        """Solve a batch, vectorising same-shape DP solves.

        Responses come back in request order.  Requests that would run
        the Multiple-NoD DP and are not already cached are solved first
        as one array program (:mod:`repro.algorithms.batched` — one
        NumPy pass per shape bucket, bit-identical placements); each
        precomputed result then flows through the ordinary
        :meth:`solve` path, so cache probing, checker validation, WAL
        ``CachePut`` logging and stats recording are exactly those of a
        sequential loop.  Cache hits never reach the batch.  Everything
        else fans out on the service's worker pool as before; identical
        requests in one batch still deduplicate through the cache
        (first one computes, the rest hit — modulo racing, which at
        worst recomputes).
        """
        reqs = list(requests)
        if len(reqs) <= 1:
            return [self.solve(r) for r in reqs]
        pre: List[Optional[SolveResult]] = [None] * len(reqs)
        batch_idx = [
            i
            for i, r in enumerate(reqs)
            if self._batchable(r) and not self._is_cached(r)
        ]
        if len(batch_idx) >= 2:
            for i, result in zip(
                batch_idx, self._solve_batched([reqs[i] for i in batch_idx])
            ):
                pre[i] = result
        pool = self._ensure_pool()
        return list(pool.map(self._solve_one, reqs, pre))

    def _solve_one(
        self, request: SolveRequest, precomputed: Optional[SolveResult]
    ) -> SolveResponse:
        return self.solve(request, _precomputed=precomputed)

    def _batchable(self, request: SolveRequest) -> bool:
        """True iff :meth:`solve` would run the batchable DP solver."""
        try:
            spec, _reason = select_solver(request.instance, request.solver)
        except (UnknownSolverError, NoApplicableSolverError):
            return False
        return (
            spec.name == _BATCH_SOLVER
            and request.instance.policy is Policy.MULTIPLE
            and not request.instance.has_distance_constraint
        )

    def _is_cached(self, request: SolveRequest) -> bool:
        inst_fp = instance_fingerprint(request.instance)
        return combine_fingerprint(
            inst_fp, request.solver, request.budget, request.tenant
        ) in self._cache

    def _solve_batched(
        self, batch: List[SolveRequest]
    ) -> List[SolveResult]:
        """Registry-normalised results for a batch of DP requests."""
        from ..algorithms.batched import solve_many as batched_solve

        instances = [r.instance for r in batch]
        t0 = time.perf_counter()
        outcomes = batched_solve(instances, return_exceptions=True)
        per_instance = (time.perf_counter() - t0) / len(batch)
        return [
            registry.result_from_outcome(
                _BATCH_SOLVER,
                inst,
                outcome,
                per_instance,
                keep_placement=True,
            )
            for inst, outcome in zip(instances, outcomes)
        ]

    def check(
        self, instance: ProblemInstance, placement: Placement
    ) -> List[str]:
        """Violations of ``placement`` on ``instance`` (empty = valid).

        Thin façade over the independent checker so service callers
        need no second import surface.
        """
        return placement_violations(instance, placement)

    def solver_info(self) -> List[dict]:
        """Registry introspection: one JSON-able record per solver."""
        from .selection import AUTO_CHAIN

        out = []
        for s in registry.available_solvers():
            out.append({
                "name": s.name,
                "description": s.description,
                "policy": s.policy.value if s.policy is not None else None,
                "exact": s.exact,
                "needs_nod": s.needs_nod,
                "binary_only": s.binary_only,
                "accepts_budget": s.budget_kwarg is not None,
                "in_auto_chain": s.name in AUTO_CHAIN,
            })
        return out

    # -- dynamic sessions (online re-placement) ------------------------
    def start_dynamic(
        self, instance: ProblemInstance, solver: Optional[str] = None
    ) -> str:
        """Open an online re-placement session for ``instance``.

        Parameters
        ----------
        instance:
            The initial snapshot; it is solved immediately to seed the
            session's standing placement.
        solver:
            Forwarded to :class:`~repro.dynamic.DynamicPlacement` —
            ``None`` auto-selects the incremental backend.

        Returns
        -------
        The session id to pass to :meth:`apply_events` /
        :meth:`dynamic_session`.

        Raises
        ------
        InfeasibleInstanceError
            If the initial snapshot has no placement.
        """
        from ..dynamic import DynamicPlacement

        # Solve first: an infeasible snapshot raises here and nothing is
        # logged — the WAL only ever records sessions that opened.
        engine = DynamicPlacement(instance, solver=solver)
        with self._lock:
            self._session_seq += 1
            session_id = f"dyn-{self._session_seq}-{engine.fingerprint()[:8]}"
        seq = self._log(
            SessionStart(
                session_id=session_id,
                instance=instance_to_dict(instance),
                solver=solver,
            )
        )
        with self._lock:
            self._sessions[session_id] = engine
        self._note_applied(seq)
        return session_id

    def dynamic_sessions(self) -> List[dict]:
        """One JSON-able summary per open dynamic session (sorted by id)."""
        with self._lock:
            sessions = sorted(self._sessions.items(), key=lambda kv: kv[0])
        out = []
        for sid, engine in sessions:
            placement = engine.placement
            out.append({
                "session_id": sid,
                "solver": engine.solver_name,
                "fingerprint": engine.fingerprint(),
                "n_replicas": (
                    placement.n_replicas if placement is not None else None
                ),
                "failed_hosts": sorted(engine.failed_hosts),
            })
        return out

    def dynamic_session(self, session_id: str) -> "DynamicPlacement":
        """The engine behind ``session_id`` (:class:`UnknownSessionError`)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    def close_dynamic(self, session_id: str) -> None:
        """Drop a session (idempotent); cached results stay valid."""
        with self._lock:
            known = session_id in self._sessions
        # Only log closes of sessions that exist: replaying a close for
        # an unknown id is harmless (pop is idempotent), but logging
        # no-ops would bloat the WAL for misbehaving clients.
        seq = self._log(SessionClose(session_id=session_id)) if known else None
        with self._lock:
            self._sessions.pop(session_id, None)
        self._note_applied(seq)

    def apply_events(
        self, session_id: str, events: Sequence["ChangeEvent"]
    ) -> "RepairOutcome":
        """Fold events into a dynamic session, keeping the cache honest.

        The session's instance is mutated by the events, so every
        result cached under its *old* content fingerprint is
        invalidated (the ``instance_fp -> request keys`` index makes
        this precise — untouched instances keep their entries).  When
        the repair succeeded in pure incremental mode with no failed
        hosts, the repaired placement is seeded back into the cache
        under the *new* fingerprint, so a follow-up :meth:`solve` of
        the mutated instance is a hit instead of a re-solve.

        Parameters
        ----------
        session_id:
            Id returned by :meth:`start_dynamic`.
        events:
            A batch of :data:`~repro.dynamic.ChangeEvent`.

        Returns
        -------
        The engine's :class:`~repro.dynamic.RepairOutcome`.

        Raises
        ------
        UnknownSessionError
            If ``session_id`` names no open session.
        """
        from ..dynamic import event_to_wire

        engine = self.dynamic_session(session_id)
        # Log the *events*, not their side effects: cache invalidation
        # and seeding are re-derived on replay through the same
        # `_apply_events_core` path, so one record is one crash-atomic
        # service operation.
        seq = self._log(
            SessionEvents(
                session_id=session_id,
                events=[event_to_wire(e) for e in events],
            )
        )
        outcome = self._apply_events_core(engine, events)
        self._note_applied(seq)
        return outcome

    def _apply_events_core(
        self, engine: "DynamicPlacement", events: Sequence["ChangeEvent"]
    ) -> "RepairOutcome":
        """Fold events into ``engine`` + cache upkeep (shared with replay)."""
        old_fp = instance_fingerprint(engine.instance)
        outcome = engine.apply(events)
        new_fp = instance_fingerprint(engine.instance)
        if new_fp != old_fp:
            self._invalidate_instance(old_fp)
        if (
            outcome.ok
            and outcome.mode == "incremental"
            and not engine.failed_hosts
            and outcome.placement is not None
        ):
            self._seed_cache(engine, new_fp, outcome)
        return outcome

    def _invalidate_instance(self, inst_fp: str) -> None:
        with self._lock:
            keys = self._fp_index.pop(inst_fp, set())
        for key in keys:
            self._cache.remove(key)

    def _seed_cache(
        self, engine: "DynamicPlacement", inst_fp: str, outcome: "RepairOutcome"
    ) -> None:
        """Pre-warm the result cache with an incremental repair result.

        Valid because incremental repair provably equals a from-scratch
        run of the same solver; seeding is skipped for repair/fallback
        modes and failed-host states, whose semantics a plain solve
        would not reproduce.  Seeds the explicit-solver key and, when
        auto-selection would pick the same solver for this instance,
        the ``solver=None`` key — so the common auto-path follow-up
        ``solve`` is a hit too.
        """
        fp = combine_fingerprint(inst_fp, engine.solver_name, None)
        response = SolveResponse(
            status=Status.OK,
            solver=engine.solver_name,
            n_replicas=outcome.cost,
            lower_bound=lower_bound(engine.instance),
            placement=outcome.placement,
            diagnostics=Diagnostics(
                fingerprint=fp,
                selection="dynamic",
                selection_reason=(
                    "seeded by apply_events incremental repair "
                    f"(reused {outcome.stats.nodes_reused}/"
                    f"{outcome.stats.nodes_total} subtrees)"
                ),
                solve_ms=outcome.repair_s * 1e3,
                service_ms=outcome.repair_s * 1e3,
            ),
        )
        self._cache.put(fp, response)
        self._index_key(inst_fp, fp)
        try:
            auto_spec, _reason = select_solver(engine.instance, None)
        except NoApplicableSolverError:  # pragma: no cover - defensive
            return
        if auto_spec.name == engine.solver_name:
            auto_fp = combine_fingerprint(inst_fp, None, None)
            self._cache.put(auto_fp, replace(response, diagnostics=replace(
                response.diagnostics, fingerprint=auto_fp, selection="dynamic",
            )))
            self._index_key(inst_fp, auto_fp)

    def warm_cache(self, entries: Iterable[dict]) -> "tuple[int, int]":
        """Seed the result cache with entries another node computed.

        The cluster router calls this (via ``POST /v1/cache/warm``) when
        this worker rejoins the ring, pushing the durable cache entries
        its ring successors accumulated while it was away — see
        :mod:`repro.cluster.warmup`.  Each entry is the wire shape
        ``{"key", "instance_fp", "response"}``; entries already present
        or with non-cacheable statuses are skipped, accepted ones are
        WAL-logged like any organic cache put (so warmth survives the
        *next* crash too).

        Returns ``(warmed, skipped)``.  Raises
        :class:`~repro.service.schema.WireFormatError` (or ``KeyError``/
        ``TypeError``) on malformed entries — the daemon maps those to
        HTTP 400.
        """
        warmed = 0
        skipped = 0
        for entry in entries:
            key = str(entry["key"])
            response = SolveResponse.from_wire(entry["response"])
            if response.status not in _CACHEABLE or key in self._cache:
                skipped += 1
                continue
            inst_fp = str(entry.get("instance_fp") or "")
            seq = self._log(
                CachePut(
                    key=key, instance_fp=inst_fp, response=response.to_wire()
                )
            )
            self._cache.put(key, response)
            if inst_fp:
                self._index_key(inst_fp, key)
            self._note_applied(seq)
            warmed += 1
        return warmed, skipped

    def _index_key(self, inst_fp: str, request_fp: str) -> None:
        with self._lock:
            self._fp_index.setdefault(inst_fp, set()).add(request_fp)
            overgrown = len(self._fp_index) > max(64, 4 * self._cache.stats().max_entries)
        if overgrown:
            self._prune_fp_index()

    def _prune_fp_index(self) -> None:
        """Drop index entries whose cache keys were all evicted."""
        with self._lock:
            for inst_fp in list(self._fp_index):
                live = {k for k in self._fp_index[inst_fp] if k in self._cache}
                if live:
                    self._fp_index[inst_fp] = live
                else:
                    del self._fp_index[inst_fp]

    # -- durability (WAL + snapshot persistence) -----------------------
    def _attach_store(self, store: StateStore) -> None:
        """Recover persisted state from ``store`` and bind it for logging.

        Runs the snapshot restore and record replay with ``_replaying``
        set, so the mutations they trigger (cache puts, session
        creation, invalidation/seeding from event replay) are *not*
        logged again.  Only after a complete replay is the store bound —
        a failed recovery leaves the service unusable rather than
        half-recovered.
        """
        recovered = store.recover()
        self._replaying = True
        try:
            if recovered.snapshot is not None:
                self._restore_snapshot(recovered.snapshot)
            for seq, record in recovered.records:
                try:
                    self._apply_record(record)
                except RecoveryError:
                    raise
                except Exception as exc:  # noqa: BLE001 — normalise replay
                    raise RecoveryError(
                        f"replay of record seq {seq} "
                        f"({type(record).__name__}) failed — "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
        finally:
            self._replaying = False
        self._store = store

    def _log(self, record: LogRecord) -> Optional[int]:
        """WAL-append one record; ``None`` when running in-memory.

        Called *before* the mutation the record describes (log before
        apply); pair with :meth:`_note_applied` afterwards.  Never call
        while holding ``self._lock`` — snapshot capture re-enters it.
        """
        store = self._store
        if store is None or self._replaying:
            return None
        return store.append(record)

    def _note_applied(self, seq: Optional[int]) -> None:
        """Advance the store's applied watermark (may auto-snapshot)."""
        if seq is None:
            return
        store = self._store
        if store is not None:
            store.note_applied(seq, self._snapshot_state)

    def persist_now(self) -> Optional[int]:
        """Snapshot + compact immediately; the snapshot's seq, or ``None``.

        The graceful-shutdown path (daemon signal handlers) calls this
        so a restart replays a snapshot instead of the whole log.
        """
        store = self._store
        if store is None:
            return None
        return store.snapshot_now(self._snapshot_state)

    def _snapshot_state(self) -> dict:
        """JSON-able capture of the durable state (sessions + cache)."""
        with self._lock:
            sessions = list(self._sessions.items())
            session_seq = self._session_seq
            key_to_fp = {
                key: inst_fp
                for inst_fp, keys in self._fp_index.items()
                for key in keys
            }
        out_sessions = {}
        for sid, engine in sessions:
            instance, solver, failed = engine.checkpoint()
            out_sessions[sid] = {
                "instance": instance_to_dict(instance),
                "solver": solver,
                "failed": sorted(int(v) for v in failed),
            }
        cache = [
            {
                "key": key,
                "instance_fp": key_to_fp.get(key, ""),
                "response": resp.to_wire(),
            }
            for key, resp in self._cache.entries()
        ]
        return {
            "schema": STATE_SCHEMA_VERSION,
            "session_seq": session_seq,
            "sessions": out_sessions,
            "cache": cache,
        }

    def _restore_snapshot(self, state: dict) -> None:
        """Rebuild sessions and cache from a :meth:`_snapshot_state` dict."""
        from ..dynamic import DynamicPlacement

        if not isinstance(state, dict) or state.get("schema") != STATE_SCHEMA_VERSION:
            raise RecoveryError(
                f"snapshot state schema {state.get('schema')!r} unsupported "
                f"(this service speaks version {STATE_SCHEMA_VERSION})"
            )
        try:
            self._session_seq = int(state.get("session_seq", 0))
            for sid, body in dict(state.get("sessions", {})).items():
                # strict=False: the engine re-solves from the restored
                # snapshot; a currently-infeasible session comes back
                # with no standing placement (exactly its live state)
                # instead of failing recovery.
                self._sessions[str(sid)] = DynamicPlacement(
                    instance_from_dict(body["instance"]),
                    solver=body.get("solver"),
                    failed=frozenset(int(v) for v in body.get("failed", [])),
                    strict=False,
                )
            for entry in list(state.get("cache", [])):
                response = SolveResponse.from_wire(entry["response"])
                self._cache.put(str(entry["key"]), response)
                if entry.get("instance_fp"):
                    self._index_key(str(entry["instance_fp"]), str(entry["key"]))
        except RecoveryError:
            raise
        except Exception as exc:  # noqa: BLE001 — normalise codec failures
            raise RecoveryError(
                f"snapshot state is malformed — {type(exc).__name__}: {exc}"
            ) from exc

    def _apply_record(self, record: LogRecord) -> None:
        """Replay one WAL record through the live mutation paths."""
        from ..dynamic import DynamicPlacement, event_from_wire

        if isinstance(record, CachePut):
            self._cache.put(record.key, SolveResponse.from_wire(record.response))
            if record.instance_fp:
                self._index_key(record.instance_fp, record.key)
        elif isinstance(record, CacheRemove):
            for key in record.keys:
                self._cache.remove(key)
        elif isinstance(record, SessionStart):
            if record.session_id in self._sessions:
                raise RecoveryError(
                    f"duplicate SessionStart for {record.session_id!r}"
                )
            # strict default: the session was only logged after its
            # initial solve succeeded, so the replayed solve must too.
            self._sessions[record.session_id] = DynamicPlacement(
                instance_from_dict(record.instance), solver=record.solver
            )
            self._session_seq = max(
                self._session_seq, _session_ordinal(record.session_id)
            )
        elif isinstance(record, SessionEvents):
            engine = self._sessions.get(record.session_id)
            if engine is None:
                raise RecoveryError(
                    f"SessionEvents for unknown session {record.session_id!r}"
                )
            events = [event_from_wire(e) for e in record.events]
            self._apply_events_core(engine, events)
        elif isinstance(record, SessionClose):
            self._sessions.pop(record.session_id, None)
        else:  # pragma: no cover - decode_record rejects unknown kinds
            raise RecoveryError(f"unknown record type {type(record).__name__}")

    def state_fingerprint(self) -> str:
        """Hex digest of the durable state — the kill-and-replay oracle.

        Hashes the dynamic sessions (id, root fingerprint of instance +
        failed hosts, requested solver, standing placement) and the
        *semantic* content of the result cache — status, solver, cost,
        bound, placement, error — excluding diagnostics, whose wall
        times and memo-dependent selection notes legitimately differ
        between a live run and its replay.  A recovered service with an
        equal fingerprint answers every future request identically.
        """
        from ..dynamic import root_fingerprint

        h = blake2b(digest_size=16)
        with self._lock:
            sessions = sorted(self._sessions.items(), key=lambda kv: kv[0])
            session_seq = self._session_seq
        h.update(str(session_seq).encode())
        for sid, engine in sessions:
            instance, solver, failed = engine.checkpoint()
            placement = engine.placement
            h.update(b"\x00session\x00")
            h.update(sid.encode())
            h.update(root_fingerprint(instance, failed).encode())
            h.update((solver or "").encode())
            h.update(
                canonical_json(placement_to_dict(placement)).encode()
                if placement is not None
                else b"none"
            )
        for key, resp in sorted(self._cache.entries(), key=lambda kv: kv[0]):
            h.update(b"\x00cache\x00")
            h.update(key.encode())
            h.update(canonical_json({
                "status": resp.status,
                "solver": resp.solver,
                "n_replicas": resp.n_replicas,
                "lower_bound": resp.lower_bound,
                "placement": (
                    placement_to_dict(resp.placement)
                    if resp.placement is not None
                    else None
                ),
                "error": resp.error.to_wire() if resp.error is not None else None,
            }).encode())
        return h.hexdigest()

    # -- stats ---------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="placement-service",
                )
            return self._pool

    def _record(self, response: SolveResponse) -> None:
        with self._lock:
            self._requests += 1
            self._by_status[response.status] = (
                self._by_status.get(response.status, 0) + 1
            )
            self._latencies_ms.append(response.diagnostics.service_ms)
            if len(self._latencies_ms) > self._LATENCY_WINDOW:
                del self._latencies_ms[: -self._LATENCY_WINDOW]

    def stats(self) -> ServiceStats:
        """Snapshot of request, cache, latency and durability counters."""
        with self._lock:
            lat = sorted(self._latencies_ms)
            by_status = dict(self._by_status)
            requests = self._requests
            uptime = time.monotonic() - self._started
            store = self._store
        return ServiceStats(
            requests=requests,
            by_status=by_status,
            cache=self._cache.stats(),
            latency_ms_mean=(sum(lat) / len(lat)) if lat else 0.0,
            latency_ms_p50=_percentile(lat, 0.50) if lat else 0.0,
            latency_ms_p95=_percentile(lat, 0.95) if lat else 0.0,
            latency_ms_max=lat[-1] if lat else 0.0,
            uptime_s=uptime,
            durability=store.status() if store is not None else None,
        )
