"""The :class:`PlacementService` façade — the front door for solving.

Every entry point in the repository (CLI verbs, the HTTP daemon, tests,
downstream libraries) funnels solve traffic through this class instead
of calling algorithm functions directly.  One ``solve`` call does, in
order:

1. fingerprint the request (content-addressed, see
   :mod:`repro.service.fingerprint`);
2. consult the LRU result cache — a hit returns immediately with
   ``diagnostics.cache_hit=True``;
3. resolve the solver: explicit name honoured verbatim, otherwise the
   documented auto-selection chain (:mod:`repro.service.selection`);
4. run it through the registry's uniform ``solve`` (validation
   included) and normalise *every* outcome — infeasible, inapplicable,
   budget-exhausted, crashed, invalid — into a typed
   :class:`~repro.service.schema.SolveResponse` with a structured
   error; request-level failures never raise;
5. cache deterministic outcomes (``ok`` and ``infeasible``) and record
   latency/status counters for :meth:`stats`.

The service is thread-safe end to end (locked cache, locked counters)
and owns a lazily started thread pool for :meth:`solve_many`, so the
threaded HTTP daemon and library callers share one implementation.

The service also fronts the online re-placement layer:
:meth:`PlacementService.start_dynamic` opens a
:class:`~repro.dynamic.DynamicPlacement` session and
:meth:`PlacementService.apply_events` folds change events into it while
keeping the result cache honest — entries keyed by the mutated
instance's old content fingerprint are invalidated (via an
``instance_fp -> request keys`` index) and the incremental repair
result is seeded under the new fingerprint.  See ``docs/service.md``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set

from ..core.bounds import lower_bound
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.validation import placement_violations
from ..runner import registry
from ..runner.result import Status
from ..runner.registry import UnknownSolverError
from .cache import CacheStats, ResultCache
from .fingerprint import combine_fingerprint, instance_fingerprint
from .schema import Diagnostics, ErrorCode, ErrorInfo, SolveRequest, SolveResponse
from .selection import NoApplicableSolverError, select_solver

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..dynamic import ChangeEvent, DynamicPlacement, RepairOutcome

__all__ = ["PlacementService", "ServiceStats", "UnknownSessionError"]


class UnknownSessionError(KeyError):
    """``apply_events`` named a dynamic session that does not exist."""

# Deterministic outcomes worth caching: re-solving cannot change them.
_CACHEABLE = (Status.OK, Status.INFEASIBLE)

_STATUS_TO_CODE = {
    Status.INFEASIBLE: ErrorCode.INFEASIBLE,
    Status.INAPPLICABLE: ErrorCode.INAPPLICABLE,
    Status.BUDGET: ErrorCode.BUDGET_EXHAUSTED,
    Status.INVALID: ErrorCode.INVALID_PLACEMENT,
    Status.ERROR: ErrorCode.SOLVER_ERROR,
}


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list."""
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time service counters for health checks and reports."""

    requests: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)
    cache: CacheStats = field(default_factory=CacheStats)
    latency_ms_mean: float = 0.0
    latency_ms_p50: float = 0.0
    latency_ms_p95: float = 0.0
    latency_ms_max: float = 0.0
    uptime_s: float = 0.0

    def to_wire(self) -> dict:
        return {
            "requests": self.requests,
            "by_status": dict(self.by_status),
            "cache": {
                "size": self.cache.size,
                "max_entries": self.cache.max_entries,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_rate": self.cache.hit_rate,
            },
            "latency_ms": {
                "mean": self.latency_ms_mean,
                "p50": self.latency_ms_p50,
                "p95": self.latency_ms_p95,
                "max": self.latency_ms_max,
            },
            "uptime_s": self.uptime_s,
        }


class PlacementService:
    """Typed, cached, concurrent solve service over the solver registry.

    Parameters
    ----------
    cache_size:
        Maximum entries in the LRU result cache (``0`` disables it).
    workers:
        Thread-pool width for :meth:`solve_many`; ``None`` lets the
        executor pick its default.  Single :meth:`solve` calls never
        touch the pool.
    default_budget:
        Budget applied when a request carries none (forwarded only to
        solvers that declare a budget kwarg).
    """

    # Sliding window of per-request service latencies kept for stats.
    _LATENCY_WINDOW = 2048

    def __init__(
        self,
        cache_size: int = 256,
        workers: Optional[int] = None,
        default_budget: Optional[int] = None,
    ) -> None:
        self._cache: ResultCache[SolveResponse] = ResultCache(cache_size)
        self._workers = workers
        self._default_budget = default_budget
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._requests = 0
        self._by_status: Dict[str, int] = {}
        self._latencies_ms: List[float] = []
        self._started = time.monotonic()
        # instance fingerprint -> request cache keys derived from it,
        # so dynamic-session mutations can invalidate precisely.
        self._fp_index: Dict[str, Set[str]] = {}
        self._sessions: Dict[str, "DynamicPlacement"] = {}
        self._session_seq = 0

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PlacementService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the core call -------------------------------------------------
    def solve(self, request: SolveRequest) -> SolveResponse:
        """Answer one request; request-level failures never raise.

        Parameters
        ----------
        request:
            The typed request.  ``request.solver=None`` auto-selects
            from the documented fallback chain
            (:mod:`repro.service.selection`); ``request.budget=None``
            falls back to the service default;
            ``request.include_assignments=False`` strips the placement
            from the response (the cached entry keeps it).

        Returns
        -------
        SolveResponse
            Always well-formed: on success ``status="ok"`` with the
            checker-validated placement and diagnostics (cache hit,
            fingerprint, selection reason, solve/service latency); on
            failure the registry status plus a structured
            :class:`~repro.service.schema.ErrorInfo`.  Request-level
            problems (unknown solver, nothing applicable) come back as
            ``status="error"`` responses, never exceptions.
        """
        t0 = time.perf_counter()
        inst_fp = instance_fingerprint(request.instance)
        fp = combine_fingerprint(inst_fp, request.solver, request.budget)

        cached = self._cache.get(fp)
        if cached is not None:
            response = replace(
                cached,
                request_id=request.request_id,
                placement=(
                    cached.placement if request.include_assignments else None
                ),
                diagnostics=replace(
                    cached.diagnostics,
                    cache_hit=True,
                    service_ms=(time.perf_counter() - t0) * 1e3,
                    # Fresh dict per response: callers may mutate it,
                    # and the cached entry must stay pristine.
                    counters=dict(cached.diagnostics.counters),
                ),
            )
            self._record(response)
            return response

        response = self._compute(request, fp, t0)
        if response.status in _CACHEABLE:
            # Cache the full response (assignments included) so later
            # hits can honour include_assignments either way.  The
            # entry gets its own diagnostics/counters: the object
            # handed back to the caller is mutable, and caller edits
            # must not leak into future cache hits.
            self._cache.put(
                fp,
                replace(
                    response,
                    diagnostics=replace(
                        response.diagnostics,
                        counters=dict(response.diagnostics.counters),
                    ),
                ),
            )
            self._index_key(inst_fp, fp)
        if not request.include_assignments:
            response = replace(response, placement=None)
        self._record(response)
        return response

    def _compute(
        self, request: SolveRequest, fp: str, t0: float
    ) -> SolveResponse:
        diag = Diagnostics(fingerprint=fp)
        try:
            spec, reason = select_solver(request.instance, request.solver)
        except UnknownSolverError as exc:
            return self._failure(
                request, diag, ErrorCode.UNKNOWN_SOLVER, str(exc), t0
            )
        except NoApplicableSolverError as exc:
            return self._failure(
                request, diag, ErrorCode.NO_APPLICABLE_SOLVER, str(exc), t0
            )
        diag.selection = "explicit" if request.solver is not None else "auto"
        diag.selection_reason = reason

        budget = request.budget
        if budget is None:
            budget = self._default_budget
        result = registry.solve(
            spec.name,
            request.instance,
            budget=budget,
            keep_placement=True,
        )

        diag.solve_ms = result.wall_time * 1e3
        diag.counters = dict(result.counters)
        diag.service_ms = (time.perf_counter() - t0) * 1e3
        error = None
        if result.status != Status.OK:
            error = ErrorInfo(
                code=_STATUS_TO_CODE.get(result.status, ErrorCode.SOLVER_ERROR),
                message=result.error or result.status,
            )
        return SolveResponse(
            status=result.status,
            solver=spec.name,
            n_replicas=result.n_replicas,
            lower_bound=result.lower_bound,
            placement=result.placement,
            diagnostics=diag,
            error=error,
            request_id=request.request_id,
        )

    def _failure(
        self,
        request: SolveRequest,
        diag: Diagnostics,
        code: str,
        message: str,
        t0: float,
    ) -> SolveResponse:
        diag.service_ms = (time.perf_counter() - t0) * 1e3
        return SolveResponse(
            status=Status.ERROR,
            diagnostics=diag,
            error=ErrorInfo(code=code, message=message),
            request_id=request.request_id,
        )

    # -- conveniences --------------------------------------------------
    def solve_instance(
        self,
        instance: ProblemInstance,
        solver: Optional[str] = None,
        *,
        budget: Optional[int] = None,
        include_assignments: bool = True,
        request_id: Optional[str] = None,
    ) -> SolveResponse:
        """:meth:`solve` without building the request by hand."""
        return self.solve(
            SolveRequest(
                instance=instance,
                solver=solver,
                budget=budget,
                include_assignments=include_assignments,
                request_id=request_id,
            )
        )

    def solve_many(
        self, requests: Iterable[SolveRequest]
    ) -> List[SolveResponse]:
        """Solve a batch concurrently on the service's worker pool.

        Responses come back in request order.  The pool is created on
        first use and shared across calls; identical requests in one
        batch still deduplicate through the cache (first one computes,
        the rest hit — modulo racing, which at worst recomputes).
        """
        reqs = list(requests)
        if len(reqs) <= 1:
            return [self.solve(r) for r in reqs]
        pool = self._ensure_pool()
        return list(pool.map(self.solve, reqs))

    def check(
        self, instance: ProblemInstance, placement: Placement
    ) -> List[str]:
        """Violations of ``placement`` on ``instance`` (empty = valid).

        Thin façade over the independent checker so service callers
        need no second import surface.
        """
        return placement_violations(instance, placement)

    def solver_info(self) -> List[dict]:
        """Registry introspection: one JSON-able record per solver."""
        from .selection import AUTO_CHAIN

        out = []
        for s in registry.available_solvers():
            out.append({
                "name": s.name,
                "description": s.description,
                "policy": s.policy.value if s.policy is not None else None,
                "exact": s.exact,
                "needs_nod": s.needs_nod,
                "binary_only": s.binary_only,
                "accepts_budget": s.budget_kwarg is not None,
                "in_auto_chain": s.name in AUTO_CHAIN,
            })
        return out

    # -- dynamic sessions (online re-placement) ------------------------
    def start_dynamic(
        self, instance: ProblemInstance, solver: Optional[str] = None
    ) -> str:
        """Open an online re-placement session for ``instance``.

        Parameters
        ----------
        instance:
            The initial snapshot; it is solved immediately to seed the
            session's standing placement.
        solver:
            Forwarded to :class:`~repro.dynamic.DynamicPlacement` —
            ``None`` auto-selects the incremental backend.

        Returns
        -------
        The session id to pass to :meth:`apply_events` /
        :meth:`dynamic_session`.

        Raises
        ------
        InfeasibleInstanceError
            If the initial snapshot has no placement.
        """
        from ..dynamic import DynamicPlacement

        engine = DynamicPlacement(instance, solver=solver)
        with self._lock:
            self._session_seq += 1
            session_id = f"dyn-{self._session_seq}-{engine.fingerprint()[:8]}"
            self._sessions[session_id] = engine
        return session_id

    def dynamic_session(self, session_id: str) -> "DynamicPlacement":
        """The engine behind ``session_id`` (:class:`UnknownSessionError`)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise UnknownSessionError(session_id) from None

    def close_dynamic(self, session_id: str) -> None:
        """Drop a session (idempotent); cached results stay valid."""
        with self._lock:
            self._sessions.pop(session_id, None)

    def apply_events(
        self, session_id: str, events: Sequence["ChangeEvent"]
    ) -> "RepairOutcome":
        """Fold events into a dynamic session, keeping the cache honest.

        The session's instance is mutated by the events, so every
        result cached under its *old* content fingerprint is
        invalidated (the ``instance_fp -> request keys`` index makes
        this precise — untouched instances keep their entries).  When
        the repair succeeded in pure incremental mode with no failed
        hosts, the repaired placement is seeded back into the cache
        under the *new* fingerprint, so a follow-up :meth:`solve` of
        the mutated instance is a hit instead of a re-solve.

        Parameters
        ----------
        session_id:
            Id returned by :meth:`start_dynamic`.
        events:
            A batch of :data:`~repro.dynamic.ChangeEvent`.

        Returns
        -------
        The engine's :class:`~repro.dynamic.RepairOutcome`.

        Raises
        ------
        UnknownSessionError
            If ``session_id`` names no open session.
        """
        engine = self.dynamic_session(session_id)
        old_fp = instance_fingerprint(engine.instance)
        outcome = engine.apply(events)
        new_fp = instance_fingerprint(engine.instance)
        if new_fp != old_fp:
            self._invalidate_instance(old_fp)
        if (
            outcome.ok
            and outcome.mode == "incremental"
            and not engine.failed_hosts
            and outcome.placement is not None
        ):
            self._seed_cache(engine, new_fp, outcome)
        return outcome

    def _invalidate_instance(self, inst_fp: str) -> None:
        with self._lock:
            keys = self._fp_index.pop(inst_fp, set())
        for key in keys:
            self._cache.remove(key)

    def _seed_cache(
        self, engine: "DynamicPlacement", inst_fp: str, outcome: "RepairOutcome"
    ) -> None:
        """Pre-warm the result cache with an incremental repair result.

        Valid because incremental repair provably equals a from-scratch
        run of the same solver; seeding is skipped for repair/fallback
        modes and failed-host states, whose semantics a plain solve
        would not reproduce.  Seeds the explicit-solver key and, when
        auto-selection would pick the same solver for this instance,
        the ``solver=None`` key — so the common auto-path follow-up
        ``solve`` is a hit too.
        """
        fp = combine_fingerprint(inst_fp, engine.solver_name, None)
        response = SolveResponse(
            status=Status.OK,
            solver=engine.solver_name,
            n_replicas=outcome.cost,
            lower_bound=lower_bound(engine.instance),
            placement=outcome.placement,
            diagnostics=Diagnostics(
                fingerprint=fp,
                selection="dynamic",
                selection_reason=(
                    "seeded by apply_events incremental repair "
                    f"(reused {outcome.stats.nodes_reused}/"
                    f"{outcome.stats.nodes_total} subtrees)"
                ),
                solve_ms=outcome.repair_s * 1e3,
                service_ms=outcome.repair_s * 1e3,
            ),
        )
        self._cache.put(fp, response)
        self._index_key(inst_fp, fp)
        try:
            auto_spec, _reason = select_solver(engine.instance, None)
        except NoApplicableSolverError:  # pragma: no cover - defensive
            return
        if auto_spec.name == engine.solver_name:
            auto_fp = combine_fingerprint(inst_fp, None, None)
            self._cache.put(auto_fp, replace(response, diagnostics=replace(
                response.diagnostics, fingerprint=auto_fp, selection="dynamic",
            )))
            self._index_key(inst_fp, auto_fp)

    def _index_key(self, inst_fp: str, request_fp: str) -> None:
        with self._lock:
            self._fp_index.setdefault(inst_fp, set()).add(request_fp)
            overgrown = len(self._fp_index) > max(64, 4 * self._cache.stats().max_entries)
        if overgrown:
            self._prune_fp_index()

    def _prune_fp_index(self) -> None:
        """Drop index entries whose cache keys were all evicted."""
        with self._lock:
            for inst_fp in list(self._fp_index):
                live = {k for k in self._fp_index[inst_fp] if k in self._cache}
                if live:
                    self._fp_index[inst_fp] = live
                else:
                    del self._fp_index[inst_fp]

    # -- stats ---------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="placement-service",
                )
            return self._pool

    def _record(self, response: SolveResponse) -> None:
        with self._lock:
            self._requests += 1
            self._by_status[response.status] = (
                self._by_status.get(response.status, 0) + 1
            )
            self._latencies_ms.append(response.diagnostics.service_ms)
            if len(self._latencies_ms) > self._LATENCY_WINDOW:
                del self._latencies_ms[: -self._LATENCY_WINDOW]

    def stats(self) -> ServiceStats:
        """Snapshot of request, cache and latency counters."""
        with self._lock:
            lat = sorted(self._latencies_ms)
            by_status = dict(self._by_status)
            requests = self._requests
            uptime = time.monotonic() - self._started
        return ServiceStats(
            requests=requests,
            by_status=by_status,
            cache=self._cache.stats(),
            latency_ms_mean=(sum(lat) / len(lat)) if lat else 0.0,
            latency_ms_p50=_percentile(lat, 0.50) if lat else 0.0,
            latency_ms_p95=_percentile(lat, 0.95) if lat else 0.0,
            latency_ms_max=lat[-1] if lat else 0.0,
            uptime_s=uptime,
        )
