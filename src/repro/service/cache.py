"""Thread-safe LRU result cache keyed by request fingerprint.

A deliberately small, dependency-free LRU built on ``OrderedDict``:
``get`` promotes, ``put`` evicts the least recently used entry past
``max_entries``.  All operations take one lock, so the cache can sit
behind the threaded daemon and the façade's worker pool unchanged.
Hit/miss/eviction counters are exposed as an immutable
:class:`CacheStats` snapshot for the diagnostics and analysis layers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Optional, TypeVar

__all__ = ["CacheStats", "ResultCache"]

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache counters."""

    size: int = 0
    max_entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never queried)."""
        n = self.lookups
        return self.hits / n if n else 0.0


class ResultCache(Generic[V]):
    """Bounded LRU mapping ``fingerprint -> value``.

    ``max_entries <= 0`` disables caching entirely (every ``get`` is a
    miss, ``put`` is a no-op) — useful for benchmarking the uncached
    path without branching at the call sites.
    """

    def __init__(self, max_entries: int = 128) -> None:
        self._max = int(max_entries)
        self._data: "OrderedDict[str, V]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[V]:
        """The cached value (promoted to most-recent), or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: V) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self._max <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self._max:
                self._data.popitem(last=False)
                self._evictions += 1

    def remove(self, key: str) -> bool:
        """Invalidate one entry; True if it was present.

        Used by the dynamic-session path: when events mutate an
        instance, every cached response keyed to its old fingerprint is
        dropped (counters are untouched — invalidation is not a miss).
        """
        with self._lock:
            return self._data.pop(key, None) is not None

    def entries(self) -> "list[tuple[str, V]]":
        """``(key, value)`` pairs in LRU order (oldest first).

        Used by the storage layer to snapshot the cache: replaying the
        pairs through :meth:`put` in this order reproduces both the
        contents and the eviction order at capture time.
        """
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are lifetime stats)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        """Immutable snapshot of size and lifetime counters."""
        with self._lock:
            return CacheStats(
                size=len(self._data),
                max_entries=self._max,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
