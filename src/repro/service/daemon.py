"""``repro serve`` — the placement service over HTTP.

A dependency-free daemon on stdlib ``http.server``: a
:class:`~http.server.ThreadingHTTPServer` whose handler delegates every
request to one shared, thread-safe
:class:`~repro.service.facade.PlacementService`.  JSON in, JSON out,
same wire schema as the library codecs — a round-trip through the
daemon is byte-identical to ``SolveRequest.to_wire`` /
``SolveResponse.from_wire``.

Endpoints
---------
``POST /v1/solve``
    Body: a ``SolveRequest`` wire object.  Returns a ``SolveResponse``
    wire object: HTTP 200 for every solver-level outcome (including
    ``infeasible`` etc. — inspect ``status``/``error``), HTTP 400 for
    malformed envelopes, unknown solvers and empty registries.
``GET /v1/solvers``
    Registry introspection: ``{"schema": 1, "solvers": [...]}`` with
    applicability metadata and auto-chain membership per solver.
``GET /v1/healthz``
    Liveness plus service stats (requests, cache hit rate, latency
    percentiles, uptime).

Anything else is a JSON 404.  Errors outside solver code map to the
``{"error": {"code", "message"}}`` shape clients already parse.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .facade import PlacementService
from .schema import (
    WIRE_SCHEMA_VERSION,
    ErrorCode,
    SolveRequest,
    WireFormatError,
)

__all__ = ["PlacementServer", "make_server", "serve"]

# Request-level error codes that are the caller's fault -> HTTP 400.
_CALLER_FAULT = (
    ErrorCode.BAD_REQUEST,
    ErrorCode.UNKNOWN_SOLVER,
    ErrorCode.NO_APPLICABLE_SOLVER,
)

_MAX_BODY_BYTES = 32 * 1024 * 1024  # refuse absurd payloads outright


def _version() -> str:
    # Imported lazily: repro/__init__ re-exports this module, so a
    # top-level `from .. import __version__` would run during the
    # package's own initialisation.
    from .. import __version__

    return __version__


class PlacementServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service instance."""

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], service: PlacementService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PlacementServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"
    # Quiet by default: one access-log line per request on stderr only
    # when the server was created verbose.
    def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                f"{self.address_string()} - {fmt % args}\n"
            )

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell well-behaved clients the connection is done so they
            # reconnect instead of reusing a socket we will close.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(
            status,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "error": {"code": code, "message": message},
            },
        )

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            # The unread body would desync the keep-alive stream (the
            # server would parse body bytes as the next request line),
            # so drop the connection with the error.
            self.close_connection = True
            self._send_error_json(
                413 if length > _MAX_BODY_BYTES else 400,
                ErrorCode.BAD_REQUEST,
                f"bad Content-Length {self.headers.get('Content-Length')!r}",
            )
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/v1/healthz":
            stats = self.server.service.stats()
            self._send_json(
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "status": "ok",
                    "version": _version(),
                    "stats": stats.to_wire(),
                },
            )
        elif self.path == "/v1/solvers":
            self._send_json(
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "solvers": self.server.service.solver_info(),
                },
            )
        else:
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path != "/v1/solve":
            # The unread POST body would desync keep-alive (parsed as
            # the next request line), so drop the connection too.
            self.close_connection = True
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, f"body is not JSON: {exc}"
            )
            return
        try:
            request = SolveRequest.from_wire(payload)
        except WireFormatError as exc:
            self._send_error_json(400, ErrorCode.BAD_REQUEST, str(exc))
            return
        response = self.server.service.solve(request)
        http_status = 200
        if response.error is not None and response.error.code in _CALLER_FAULT:
            http_status = 400
        self._send_json(http_status, response.to_wire())


def make_server(
    host: str = "127.0.0.1",
    port: int = 8350,
    *,
    service: Optional[PlacementService] = None,
    cache_size: int = 256,
    default_budget: Optional[int] = None,
    verbose: bool = False,
) -> PlacementServer:
    """Build (but do not start) a daemon bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the CI smoke
    job use to avoid collisions.
    """
    if service is None:
        service = PlacementService(
            cache_size=cache_size, default_budget=default_budget
        )
    server = PlacementServer((host, port), service)
    server.verbose = verbose
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8350,
    *,
    cache_size: int = 256,
    default_budget: Optional[int] = None,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
) -> int:
    """Run the daemon until interrupted; returns a process exit code."""
    server = make_server(
        host,
        port,
        cache_size=cache_size,
        default_budget=default_budget,
        verbose=verbose,
    )
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(POST /v1/solve, GET /v1/solvers, GET /v1/healthz)",
        file=sys.stderr,
    )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        stats = server.service.stats()
        server.service.close()
        if stats.requests:
            from ..analysis import service_report

            print(service_report(stats), file=sys.stderr)
    return 0
