"""``repro serve`` — the placement service over HTTP.

A dependency-free daemon on stdlib ``http.server``: a
:class:`~http.server.ThreadingHTTPServer` whose handler delegates every
request to one shared, thread-safe
:class:`~repro.service.facade.PlacementService`.  JSON in, JSON out,
same wire schema as the library codecs — a round-trip through the
daemon is byte-identical to ``SolveRequest.to_wire`` /
``SolveResponse.from_wire``.

Endpoints
---------
``POST /v1/solve``
    Body: a ``SolveRequest`` wire object.  Returns a ``SolveResponse``
    wire object: HTTP 200 for every solver-level outcome (including
    ``infeasible`` etc. — inspect ``status``/``error``), HTTP 400 for
    malformed envelopes, unknown solvers and empty registries.
``GET /v1/solvers``
    Registry introspection: ``{"schema": 1, "solvers": [...]}`` with
    applicability metadata and auto-chain membership per solver.
``GET /v1/healthz``
    Liveness plus service stats (requests, cache hit rate, latency
    percentiles, uptime; when running with ``--data-dir``, a
    ``durability`` section: data dir, last/snapshot sequence numbers,
    WAL size, replay counters).
``POST /v1/dynamic/start``
    Body: ``{"schema": 1, "instance": {...}, "solver": str|null}``.
    Opens an online re-placement session; returns ``{"session_id",
    "solver", "n_replicas", "fingerprint"}``.
``POST /v1/dynamic/apply``
    Body: ``{"schema": 1, "session_id": str, "events": [...]}`` with
    events in the :func:`~repro.dynamic.event_to_wire` shape.  Folds
    the batch into the session and returns the repair outcome.
``POST /v1/dynamic/close``
    Body: ``{"schema": 1, "session_id": str}``.  Drops the session.
``GET /v1/dynamic``
    Lists open sessions with solver, cost and failed hosts.
``POST /v1/cache/warm``
    Body: ``{"schema": 1, "entries": [{"key", "instance_fp",
    "response"}, ...]}``.  Bulk-seeds the result cache — the cluster
    router's rejoin warm-up path (:mod:`repro.cluster.warmup`).

Anything else is a JSON 404.  Errors outside solver code map to the
``{"error": {"code", "message"}}`` shape clients already parse.

Durability: ``serve(..., data_dir=...)`` backs the service with a
:class:`~repro.storage.StateStore` — sessions and cache entries are
write-ahead logged and recovered on restart — and installs
``SIGTERM``/``SIGINT`` handlers that snapshot + compact before exiting,
so a polite shutdown restarts from a snapshot instead of a log replay
(``kill -9`` still recovers, from WAL replay; see
``docs/durability.md``).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from ..core.errors import ReproError
from ..storage import StateStore
from .facade import PlacementService, UnknownSessionError
from .schema import (
    WIRE_SCHEMA_VERSION,
    ErrorCode,
    SolveRequest,
    WireFormatError,
)

__all__ = ["PlacementServer", "make_server", "serve"]

# Request-level error codes that are the caller's fault -> HTTP 400.
_CALLER_FAULT = (
    ErrorCode.BAD_REQUEST,
    ErrorCode.UNKNOWN_SOLVER,
    ErrorCode.NO_APPLICABLE_SOLVER,
)

_MAX_BODY_BYTES = 32 * 1024 * 1024  # refuse absurd payloads outright


def _version() -> str:
    # Imported lazily: repro/__init__ re-exports this module, so a
    # top-level `from .. import __version__` would run during the
    # package's own initialisation.
    from .. import __version__

    return __version__


class PlacementServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service instance."""

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], service: PlacementService
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: PlacementServer  # narrowed for type checkers

    protocol_version = "HTTP/1.1"
    # Quiet by default: one access-log line per request on stderr only
    # when the server was created verbose.
    def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                f"{self.address_string()} - {fmt % args}\n"
            )

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell well-behaved clients the connection is done so they
            # reconnect instead of reusing a socket we will close.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, code: str, message: str) -> None:
        self._send_json(
            status,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "error": {"code": code, "message": message},
            },
        )

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > _MAX_BODY_BYTES:
            # The unread body would desync the keep-alive stream (the
            # server would parse body bytes as the next request line),
            # so drop the connection with the error.
            self.close_connection = True
            self._send_error_json(
                413 if length > _MAX_BODY_BYTES else 400,
                ErrorCode.BAD_REQUEST,
                f"bad Content-Length {self.headers.get('Content-Length')!r}",
            )
            return None
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        if self.path == "/v1/healthz":
            stats = self.server.service.stats()
            self._send_json(
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "status": "ok",
                    "version": _version(),
                    "stats": stats.to_wire(),
                },
            )
        elif self.path == "/v1/solvers":
            self._send_json(
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "solvers": self.server.service.solver_info(),
                },
            )
        elif self.path == "/v1/dynamic":
            self._send_json(
                200,
                {
                    "schema": WIRE_SCHEMA_VERSION,
                    "sessions": self.server.service.dynamic_sessions(),
                },
            )
        else:
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        routes = {
            "/v1/solve": self._post_solve,
            "/v1/dynamic/start": self._post_dynamic_start,
            "/v1/dynamic/apply": self._post_dynamic_apply,
            "/v1/dynamic/close": self._post_dynamic_close,
            "/v1/cache/warm": self._post_cache_warm,
        }
        route = routes.get(self.path)
        if route is None:
            # The unread POST body would desync keep-alive (parsed as
            # the next request line), so drop the connection too.
            self.close_connection = True
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such endpoint: {self.path}"
            )
            return
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, f"body is not JSON: {exc}"
            )
            return
        route(payload)

    def _post_solve(self, payload: object) -> None:
        try:
            request = SolveRequest.from_wire(payload)
        except WireFormatError as exc:
            self._send_error_json(400, ErrorCode.BAD_REQUEST, str(exc))
            return
        response = self.server.service.solve(request)
        http_status = 200
        if response.error is not None and response.error.code in _CALLER_FAULT:
            http_status = 400
        self._send_json(http_status, response.to_wire())

    # -- dynamic sessions ----------------------------------------------
    def _check_envelope(self, payload: object) -> Optional[dict]:
        """Common schema/shape validation for the dynamic endpoints."""
        if not isinstance(payload, dict):
            self._send_error_json(
                400,
                ErrorCode.BAD_REQUEST,
                f"body must be a JSON object, got {type(payload).__name__}",
            )
            return None
        if payload.get("schema") != WIRE_SCHEMA_VERSION:
            self._send_error_json(
                400,
                ErrorCode.BAD_REQUEST,
                f"unsupported wire schema {payload.get('schema')!r} "
                f"(this service speaks version {WIRE_SCHEMA_VERSION})",
            )
            return None
        return payload

    def _post_dynamic_start(self, payload: object) -> None:
        from ..instances.io import instance_from_dict

        payload = self._check_envelope(payload)
        if payload is None:
            return
        solver = payload.get("solver")
        if solver is not None and not isinstance(solver, str):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'solver' must be a string or null"
            )
            return
        try:
            instance = instance_from_dict(payload["instance"])
        except KeyError:
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "request is missing 'instance'"
            )
            return
        except Exception as exc:  # noqa: BLE001 — normalise codec failures
            self._send_error_json(
                400,
                ErrorCode.BAD_REQUEST,
                f"bad instance payload — {type(exc).__name__}: {exc}",
            )
            return
        service = self.server.service
        try:
            session_id = service.start_dynamic(instance, solver=solver)
        except ReproError as exc:
            # An unsolvable initial snapshot (or unknown solver) is the
            # caller's problem, reported structurally, not a 500.
            self._send_error_json(400, ErrorCode.INFEASIBLE, str(exc))
            return
        engine = service.dynamic_session(session_id)
        placement = engine.placement
        self._send_json(
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "session_id": session_id,
                "solver": engine.solver_name,
                "n_replicas": (
                    placement.n_replicas if placement is not None else None
                ),
                "fingerprint": engine.fingerprint(),
            },
        )

    def _post_dynamic_apply(self, payload: object) -> None:
        from ..dynamic import event_from_wire

        payload = self._check_envelope(payload)
        if payload is None:
            return
        session_id = payload.get("session_id")
        if not isinstance(session_id, str):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'session_id' must be a string"
            )
            return
        raw_events = payload.get("events")
        if not isinstance(raw_events, list):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'events' must be a list"
            )
            return
        try:
            events: List[object] = [event_from_wire(e) for e in raw_events]
        except ReproError as exc:
            self._send_error_json(400, ErrorCode.BAD_REQUEST, str(exc))
            return
        try:
            outcome = self.server.service.apply_events(session_id, events)
        except UnknownSessionError:
            self._send_error_json(
                404, ErrorCode.BAD_REQUEST, f"no such session: {session_id}"
            )
            return
        self._send_json(
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "session_id": session_id,
                "ok": outcome.ok,
                "mode": outcome.mode,
                "cost": outcome.cost,
                "repair_s": outcome.repair_s,
                "fallback_reason": outcome.fallback_reason,
                "error": outcome.error,
                "fingerprint": outcome.fingerprint,
            },
        )

    def _post_cache_warm(self, payload: object) -> None:
        """Cluster warm-up: seed this worker's result cache in bulk.

        Body: ``{"schema": 1, "entries": [{"key", "instance_fp",
        "response"}, ...]}`` — the shape
        :func:`repro.cluster.warmup.collect_cache_entries` produces.
        Answers ``{"warmed", "skipped"}``; malformed entries are a 400.
        """
        payload = self._check_envelope(payload)
        if payload is None:
            return
        entries = payload.get("entries")
        if not isinstance(entries, list):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'entries' must be a list"
            )
            return
        try:
            warmed, skipped = self.server.service.warm_cache(entries)
        except (WireFormatError, KeyError, TypeError, ValueError) as exc:
            self._send_error_json(
                400,
                ErrorCode.BAD_REQUEST,
                f"bad cache entry — {type(exc).__name__}: {exc}",
            )
            return
        self._send_json(
            200,
            {
                "schema": WIRE_SCHEMA_VERSION,
                "warmed": warmed,
                "skipped": skipped,
            },
        )

    def _post_dynamic_close(self, payload: object) -> None:
        payload = self._check_envelope(payload)
        if payload is None:
            return
        session_id = payload.get("session_id")
        if not isinstance(session_id, str):
            self._send_error_json(
                400, ErrorCode.BAD_REQUEST, "'session_id' must be a string"
            )
            return
        self.server.service.close_dynamic(session_id)
        self._send_json(
            200,
            {"schema": WIRE_SCHEMA_VERSION, "session_id": session_id, "closed": True},
        )


def make_server(
    host: str = "127.0.0.1",
    port: int = 8350,
    *,
    service: Optional[PlacementService] = None,
    cache_size: int = 256,
    default_budget: Optional[int] = None,
    verbose: bool = False,
    data_dir: Optional[str] = None,
    snapshot_interval: int = 256,
) -> PlacementServer:
    """Build (but do not start) a daemon bound to ``host:port``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address`` — which is what the tests and the CI smoke
    job use to avoid collisions.  ``data_dir`` backs the service with a
    :class:`~repro.storage.StateStore`: state recovered before the
    socket binds, every mutation WAL-logged after (ignored when an
    explicit ``service`` is passed — wire its store yourself).
    """
    if service is None:
        store = (
            StateStore(data_dir, snapshot_interval=snapshot_interval)
            if data_dir is not None
            else None
        )
        service = PlacementService(
            cache_size=cache_size, default_budget=default_budget, store=store
        )
    server = PlacementServer((host, port), service)
    server.verbose = verbose
    return server


def _install_graceful_shutdown(server: PlacementServer) -> dict:
    """SIGTERM/SIGINT -> stop accepting and fall through to the flush path.

    Only possible from the main thread (a CPython restriction on
    ``signal.signal``); background-thread servers — the test harness —
    keep the default handlers.  The handler must not call
    ``server.shutdown()`` directly: it runs *on* the main thread, which
    is blocked inside ``serve_forever``, and ``shutdown()`` waits for
    that loop to exit — a deadlock — so a helper thread issues it.
    Returns the previous handlers for restoration.
    """
    if threading.current_thread() is not threading.main_thread():
        return {}

    def _graceful(signum: int, frame: object) -> None:
        name = signal.Signals(signum).name
        print(
            f"repro serve: {name} received — flushing state and exiting",
            file=sys.stderr,
        )
        threading.Thread(
            target=server.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _graceful)
    return previous


def serve(
    host: str = "127.0.0.1",
    port: int = 8350,
    *,
    cache_size: int = 256,
    default_budget: Optional[int] = None,
    verbose: bool = False,
    ready: Optional[threading.Event] = None,
    data_dir: Optional[str] = None,
    snapshot_interval: int = 256,
) -> int:
    """Run the daemon until interrupted; returns a process exit code.

    With ``data_dir`` the service is durable: state is recovered before
    the socket binds, and a SIGTERM/SIGINT triggers a final snapshot +
    WAL compaction before exit (``kill -9`` skips that and recovers
    from the log on the next start instead).
    """
    server = make_server(
        host,
        port,
        cache_size=cache_size,
        default_budget=default_budget,
        verbose=verbose,
        data_dir=data_dir,
        snapshot_interval=snapshot_interval,
    )
    bound_host, bound_port = server.server_address[:2]
    durable = f", durable in {data_dir}" if data_dir is not None else ""
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(POST /v1/solve, GET /v1/solvers, GET /v1/healthz, "
        f"POST /v1/dynamic/*{durable})",
        file=sys.stderr,
    )
    previous_handlers = _install_graceful_shutdown(server)
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        server.server_close()
        seq = server.service.persist_now()
        if seq is not None:
            print(
                f"repro serve: state snapshotted at seq {seq}", file=sys.stderr
            )
        stats = server.service.stats()
        server.service.close()
        if stats.requests:
            from ..analysis import service_report

            print(service_report(stats), file=sys.stderr)
    return 0
