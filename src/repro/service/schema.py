"""Typed wire schema of the placement service.

The service speaks one versioned JSON dialect in both directions:
:class:`SolveRequest` in, :class:`SolveResponse` out.  Both are plain
dataclasses with ``to_wire()`` / ``from_wire()`` codecs that reuse the
instance/placement codecs from :mod:`repro.instances.io` — the service
does not invent a second encoding for instances or placements, it wraps
the existing one in an envelope carrying solver choice, diagnostics and
structured errors.

Wire envelope (version ``1``)::

    request  = {"schema": 1, "instance": {...}, "solver": str|null,
                "budget": int|null, "include_assignments": bool,
                "request_id": str|null}
    response = {"schema": 1, "request_id": str|null, "status": str,
                "solver": str|null, "n_replicas": int|null,
                "lower_bound": int|null, "placement": {...}|null,
                "diagnostics": {...}, "error": {code, message}|null}

Malformed envelopes raise :class:`WireFormatError` — a *caller* error
distinct from solver-level failures, which travel inside a well-formed
response as :class:`ErrorInfo`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..core.errors import ReproError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..instances.io import (
    instance_from_dict,
    instance_to_dict,
    placement_from_dict,
    placement_to_dict,
)

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ErrorCode",
    "ErrorInfo",
    "Diagnostics",
    "SolveRequest",
    "SolveResponse",
    "WireFormatError",
]

WIRE_SCHEMA_VERSION = 1


class WireFormatError(ReproError):
    """A wire payload does not conform to the service schema."""


class ErrorCode:
    """Machine-readable error codes carried in :class:`ErrorInfo`."""

    BAD_REQUEST = "bad_request"
    UNKNOWN_SOLVER = "unknown_solver"
    NO_APPLICABLE_SOLVER = "no_applicable_solver"
    INAPPLICABLE = "inapplicable"
    INFEASIBLE = "infeasible"
    BUDGET_EXHAUSTED = "budget_exhausted"
    INVALID_PLACEMENT = "invalid_placement"
    SOLVER_ERROR = "solver_error"

    ALL = (
        BAD_REQUEST, UNKNOWN_SOLVER, NO_APPLICABLE_SOLVER, INAPPLICABLE,
        INFEASIBLE, BUDGET_EXHAUSTED, INVALID_PLACEMENT, SOLVER_ERROR,
    )


@dataclass(frozen=True)
class ErrorInfo:
    """Structured error attached to a non-``ok`` response."""

    code: str
    message: str

    def to_wire(self) -> dict:
        return {"code": self.code, "message": self.message}

    @classmethod
    def from_wire(cls, data: dict) -> "ErrorInfo":
        try:
            return cls(code=str(data["code"]), message=str(data["message"]))
        except (KeyError, TypeError) as exc:
            raise WireFormatError(f"malformed error object: {exc}") from None


@dataclass
class Diagnostics:
    """Per-request service diagnostics (returned in every response).

    Attributes
    ----------
    cache_hit:
        True when the response was served from the result cache rather
        than computed.
    fingerprint:
        Content-addressed request fingerprint (the cache key).
    selection:
        ``"explicit"`` when the request named a solver, ``"auto"`` when
        the service chose one from the fallback chain.
    selection_reason:
        Human-readable account of why this solver ran.
    solve_ms:
        Wall-clock milliseconds the solver spent computing this result;
        on a cache hit this is the original computation's figure, not 0
        (``service_ms`` reflects what *this* request cost).
    service_ms:
        End-to-end milliseconds inside the service, including cache
        lookup, selection and validation.
    counters:
        Solver work counters, when the solver exposes them.
    """

    cache_hit: bool = False
    fingerprint: str = ""
    selection: str = "explicit"
    selection_reason: str = ""
    solve_ms: float = 0.0
    service_ms: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> dict:
        return asdict(self)

    @classmethod
    def from_wire(cls, data: dict) -> "Diagnostics":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class SolveRequest:
    """One solve call: an instance plus how to solve it.

    ``solver=None`` asks the service to auto-select from the registry's
    applicability metadata (see :mod:`repro.service.selection` for the
    documented fallback chain); an explicit name is always honoured.

    ``tenant`` namespaces the result-cache key (multi-tenant replay:
    many catalogues share one tree but must not share cache entries).
    ``None`` — the default, and the only value older clients can send —
    keys identically to the pre-tenant wire format, so the field is
    additive: it is omitted from ``to_wire()`` when unset and tolerated
    as absent by ``from_wire()``.
    """

    instance: ProblemInstance
    solver: Optional[str] = None
    budget: Optional[int] = None
    include_assignments: bool = True
    request_id: Optional[str] = None
    tenant: Optional[str] = None

    def to_wire(self) -> dict:
        wire = {
            "schema": WIRE_SCHEMA_VERSION,
            "instance": instance_to_dict(self.instance),
            "solver": self.solver,
            "budget": self.budget,
            "include_assignments": self.include_assignments,
            "request_id": self.request_id,
        }
        if self.tenant is not None:
            wire["tenant"] = self.tenant
        return wire

    @classmethod
    def from_wire(cls, data: object) -> "SolveRequest":
        if not isinstance(data, dict):
            raise WireFormatError(
                f"request must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported wire schema {schema!r} "
                f"(this service speaks version {WIRE_SCHEMA_VERSION})"
            )
        if "instance" not in data:
            raise WireFormatError("request is missing the 'instance' field")
        try:
            instance = instance_from_dict(data["instance"])
        except Exception as exc:  # noqa: BLE001 — normalise codec failures
            raise WireFormatError(
                f"bad instance payload — {type(exc).__name__}: {exc}"
            ) from None
        solver = data.get("solver")
        if solver is not None and not isinstance(solver, str):
            raise WireFormatError("'solver' must be a string or null")
        budget = data.get("budget")
        if budget is not None and (
            not isinstance(budget, int) or isinstance(budget, bool)
        ):
            raise WireFormatError("'budget' must be an integer or null")
        tenant = data.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise WireFormatError("'tenant' must be a string or null")
        return cls(
            instance=instance,
            solver=solver,
            budget=budget,
            include_assignments=bool(data.get("include_assignments", True)),
            request_id=data.get("request_id"),
            tenant=tenant,
        )


@dataclass
class SolveResponse:
    """The service's answer to one :class:`SolveRequest`.

    ``status`` uses the registry's :class:`~repro.runner.result.Status`
    vocabulary (``"ok"``, ``"infeasible"``, ``"inapplicable"``,
    ``"budget"``, ``"invalid"``, ``"error"``).  ``placement`` is present
    exactly when a placement was produced and the request asked for
    assignments.
    """

    status: str
    solver: Optional[str] = None
    n_replicas: Optional[int] = None
    lower_bound: Optional[int] = None
    placement: Optional[Placement] = None
    diagnostics: Diagnostics = field(default_factory=Diagnostics)
    error: Optional[ErrorInfo] = None
    request_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff a checker-valid placement is attached."""
        return self.status == "ok"

    def to_wire(self) -> dict:
        return {
            "schema": WIRE_SCHEMA_VERSION,
            "request_id": self.request_id,
            "status": self.status,
            "solver": self.solver,
            "n_replicas": self.n_replicas,
            "lower_bound": self.lower_bound,
            "placement": (
                placement_to_dict(self.placement)
                if self.placement is not None
                else None
            ),
            "diagnostics": self.diagnostics.to_wire(),
            "error": self.error.to_wire() if self.error is not None else None,
        }

    @classmethod
    def from_wire(cls, data: object) -> "SolveResponse":
        if not isinstance(data, dict):
            raise WireFormatError(
                f"response must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != WIRE_SCHEMA_VERSION:
            raise WireFormatError(
                f"unsupported wire schema {schema!r} "
                f"(this client speaks version {WIRE_SCHEMA_VERSION})"
            )
        if "status" not in data:
            raise WireFormatError("response is missing the 'status' field")
        placement = None
        if data.get("placement") is not None:
            try:
                placement = placement_from_dict(data["placement"])
            except Exception as exc:  # noqa: BLE001 — normalise codec failures
                raise WireFormatError(
                    f"bad placement payload — {type(exc).__name__}: {exc}"
                ) from None
        error = None
        if data.get("error") is not None:
            error = ErrorInfo.from_wire(data["error"])
        return cls(
            status=str(data["status"]),
            solver=data.get("solver"),
            n_replicas=data.get("n_replicas"),
            lower_bound=data.get("lower_bound"),
            placement=placement,
            diagnostics=Diagnostics.from_wire(data.get("diagnostics") or {}),
            error=error,
            request_id=data.get("request_id"),
        )
