"""The placement service layer — the public front door for solving.

Architecture (bottom up)::

    core        model, checker, bounds
    algorithms  the paper's solvers (self-registering)
    runner      solver registry + uniform solve + batch sweeps
    service     <- you are here: typed requests/responses, caching,
                   auto-selection, concurrency, HTTP daemon
    cli         thin argparse shims over the service

Use :class:`PlacementService` from libraries and tools::

    from repro.service import PlacementService, SolveRequest

    svc = PlacementService(cache_size=256)
    resp = svc.solve(SolveRequest(instance=inst))      # auto-selection
    resp = svc.solve_instance(inst, "single-gen")      # explicit solver
    assert resp.ok and resp.placement is not None

or over the network via ``repro serve`` (see
:mod:`repro.service.daemon` for the ``/v1/*`` endpoint contract).
"""

from .cache import CacheStats, ResultCache
from .facade import PlacementService, ServiceStats, UnknownSessionError
from .fingerprint import (
    combine_fingerprint,
    fingerprint_for,
    instance_fingerprint,
    request_fingerprint,
)
from .schema import (
    WIRE_SCHEMA_VERSION,
    Diagnostics,
    ErrorCode,
    ErrorInfo,
    SolveRequest,
    SolveResponse,
    WireFormatError,
)
from .selection import (
    AUTO_CHAIN,
    NoApplicableSolverError,
    select_solver,
    selection_candidates,
)
from .daemon import PlacementServer, make_server, serve

__all__ = [
    "PlacementService",
    "ServiceStats",
    "SolveRequest",
    "SolveResponse",
    "Diagnostics",
    "ErrorInfo",
    "ErrorCode",
    "WireFormatError",
    "WIRE_SCHEMA_VERSION",
    "ResultCache",
    "CacheStats",
    "instance_fingerprint",
    "request_fingerprint",
    "combine_fingerprint",
    "fingerprint_for",
    "UnknownSessionError",
    "AUTO_CHAIN",
    "NoApplicableSolverError",
    "select_solver",
    "selection_candidates",
    "PlacementServer",
    "make_server",
    "serve",
]
