"""Content-addressed fingerprints for instances and solve requests.

A fingerprint is the SHA-256 of the canonical JSON encoding of the
payload (see :func:`repro.instances.io.canonical_json`), so it depends
only on *content*: two instances that compare equal — same tree, same
capacity/dmax/policy — fingerprint identically regardless of how they
were constructed, what file they were loaded from, or what ``name``
label they carry.  Request fingerprints additionally mix in everything
that can change the answer (solver choice, budget), and are the keys of
the service result cache.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..core.instance import ProblemInstance
from ..instances.io import canonical_json, instance_to_dict
from .schema import SolveRequest

__all__ = [
    "instance_fingerprint",
    "request_fingerprint",
    "combine_fingerprint",
    "fingerprint_for",
]


def instance_fingerprint(instance: ProblemInstance) -> str:
    """Hex SHA-256 of the instance content (``name`` excluded).

    ``name`` is a display label with ``compare=False`` semantics on
    :class:`~repro.core.instance.ProblemInstance`; fingerprints follow
    the same equality contract so renaming an instance never busts the
    cache.
    """
    payload = instance_to_dict(instance)
    payload.pop("name", None)
    # Normalise numeric types before hashing: dmax=5 and dmax=5.0 (or
    # int vs float deltas) compare equal on the instance but would
    # JSON-encode differently, silently splitting cache entries.
    payload["capacity"] = int(payload["capacity"])
    payload["dmax"] = (
        None if payload["dmax"] is None else float(payload["dmax"])
    )
    payload["deltas"] = [
        None if d is None else float(d) for d in payload["deltas"]
    ]
    payload["requests"] = [int(r) for r in payload["requests"]]
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def request_fingerprint(
    instance: ProblemInstance,
    solver: Optional[str] = None,
    budget: Optional[int] = None,
    tenant: Optional[str] = None,
) -> str:
    """Cache key for one solve call.

    Mixes the instance fingerprint with the solver name (``None`` means
    auto-selection, which is deterministic for a given registry, so it
    keys as its own slot), the budget, and the tenant namespace.
    ``include_assignments`` and ``request_id`` deliberately do not
    participate: they change the envelope, not the answer.
    """
    return combine_fingerprint(
        instance_fingerprint(instance), solver, budget, tenant
    )


def combine_fingerprint(
    instance_fp: str,
    solver: Optional[str] = None,
    budget: Optional[int] = None,
    tenant: Optional[str] = None,
) -> str:
    """:func:`request_fingerprint` from an already-computed instance fp.

    Lets the service hash each instance once per request while keeping
    an ``instance_fp -> request keys`` index for targeted invalidation.

    ``tenant`` namespaces the key for multi-tenant deployments: the
    answer for a given instance content is tenant-independent, but
    tenants must never observe each other's cache entries (a timing
    side channel would leak what another catalogue looks like), so a
    non-``None`` tenant label partitions the key space.  ``tenant=None``
    keys exactly as before the field existed — it is omitted from the
    payload — so existing caches, WAL records and snapshots stay valid.
    """
    payload = {
        "instance": instance_fp,
        "solver": solver,
        "budget": budget,
    }
    if tenant is not None:
        payload["tenant"] = str(tenant)
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def fingerprint_for(request: SolveRequest) -> str:
    """Convenience: :func:`request_fingerprint` of a typed request."""
    return request_fingerprint(
        request.instance, request.solver, request.budget, request.tenant
    )
