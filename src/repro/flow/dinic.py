"""Dinic's maximum-flow algorithm.

Iterative (stack-based) implementation of Dinic's algorithm on
:class:`~repro.flow.graph.FlowNetwork`: repeated BFS level graphs plus
blocking-flow DFS with the current-arc optimisation.  Runs in
``O(V²·E)`` in general and ``O(E·√V)`` on the unit-ish bipartite networks
produced by the Multiple-policy feasibility reduction, far below what the
small exact-solver instances need.

This is the only flow routine the library depends on; it is
cross-checked against SciPy's ``maximum_flow`` in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .graph import FlowNetwork

__all__ = ["max_flow"]

_INF = float("inf")


def _bfs_levels(g: FlowNetwork, s: int, t: int) -> List[int]:
    """Levels of the residual level graph, or [] if t unreachable."""
    level = [-1] * g.n
    level[s] = 0
    q = deque([s])
    while q:
        u = q.popleft()
        e = g.head[u]
        while e != -1:
            v = g.to[e]
            if g.capacity[e] > 0 and level[v] < 0:
                level[v] = level[u] + 1
                q.append(v)
            e = g.next_edge[e]
    return level if level[t] >= 0 else []


def _blocking_flow(g: FlowNetwork, s: int, t: int, level: List[int], it: List[int]) -> int:
    """Push a blocking flow through the level graph (iterative DFS)."""
    total = 0
    while True:
        # Find an augmenting path in the level graph using current-arc.
        path: List[int] = []  # arc ids
        u = s
        while u != t:
            e = it[u]
            advanced = False
            while e != -1:
                v = g.to[e]
                if g.capacity[e] > 0 and level[v] == level[u] + 1:
                    advanced = True
                    break
                e = g.next_edge[e]
            it[u] = e
            if not advanced:
                # dead end: retreat
                if u == s:
                    return total
                level[u] = -1  # prune
                dead = path.pop()
                u = g.to[dead ^ 1]
                continue
            path.append(e)
            u = v
        # Augment along the path by its bottleneck.
        bottleneck = min(g.capacity[e] for e in path)
        for e in path:
            g.capacity[e] -= bottleneck
            g.capacity[e ^ 1] += bottleneck
        total += bottleneck
        # Restart from the arc whose capacity hit zero.
        for idx, e in enumerate(path):
            if g.capacity[e] == 0:
                u = s if idx == 0 else g.to[path[idx - 1]]
                path = path[:idx]
                break
        # Reset walk position: simplest correct restart is from s.
        path = []
        u = s


def max_flow(g: FlowNetwork, source: int, sink: int) -> int:
    """Maximum ``source → sink`` flow; mutates ``g`` residual capacities.

    Use :meth:`FlowNetwork.flow_on` afterwards to read per-arc flows, and
    :meth:`FlowNetwork.reset` to solve again from scratch.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    flow = 0
    while True:
        level = _bfs_levels(g, source, sink)
        if not level:
            return flow
        it = list(g.head)
        flow += _blocking_flow(g, source, sink, level, it)
