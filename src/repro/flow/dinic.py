"""Dinic's maximum-flow algorithm.

Iterative (stack-based) implementation of Dinic's algorithm on
:class:`~repro.flow.graph.FlowNetwork`: repeated BFS level graphs plus
blocking-flow DFS with the current-arc optimisation.  Runs in
``O(V²·E)`` in general and ``O(E·√V)`` on the unit-ish bipartite networks
produced by the Multiple-policy feasibility reduction, far below what the
small exact-solver instances need.

This is the only flow routine the library depends on; it is
cross-checked against SciPy's ``maximum_flow`` in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .graph import FlowNetwork

__all__ = ["max_flow"]

_INF = float("inf")


def _bfs_levels(g: FlowNetwork, s: int, t: int) -> List[int]:
    """Levels of the residual level graph, or [] if t unreachable."""
    level = [-1] * g.n
    level[s] = 0
    head = g.head
    to = g.to
    capacity = g.capacity
    next_edge = g.next_edge
    q = deque([s])
    pop = q.popleft
    push = q.append
    while q:
        u = pop()
        lu = level[u] + 1
        e = head[u]
        while e != -1:
            if capacity[e] > 0:
                v = to[e]
                if level[v] < 0:
                    level[v] = lu
                    push(v)
            e = next_edge[e]
    return level if level[t] >= 0 else []


def _blocking_flow(g: FlowNetwork, s: int, t: int, level: List[int], it: List[int]) -> int:
    """Push a blocking flow through the level graph (iterative DFS).

    Current-arc DFS; after each augmentation the walk restarts from
    ``s`` (the current-arc pointers keep the restart cheap), which keeps
    the sequence of augmenting paths — and hence the per-arc flow split —
    exactly reproducible.
    """
    total = 0
    to = g.to
    capacity = g.capacity
    next_edge = g.next_edge
    while True:
        # Find an augmenting path in the level graph using current-arc.
        path: List[int] = []  # arc ids
        u = s
        while u != t:
            e = it[u]
            lu = level[u] + 1
            while e != -1:
                if capacity[e] > 0 and level[to[e]] == lu:
                    break
                e = next_edge[e]
            it[u] = e
            if e == -1:
                # dead end: retreat
                if u == s:
                    return total
                level[u] = -1  # prune
                dead = path.pop()
                u = to[dead ^ 1]
                continue
            path.append(e)
            u = to[e]
        # Augment along the path by its bottleneck.
        bottleneck = min(capacity[e] for e in path)
        for e in path:
            capacity[e] -= bottleneck
            capacity[e ^ 1] += bottleneck
        total += bottleneck


def max_flow(g: FlowNetwork, source: int, sink: int) -> int:
    """Maximum ``source → sink`` flow; mutates ``g`` residual capacities.

    Use :meth:`FlowNetwork.flow_on` afterwards to read per-arc flows, and
    :meth:`FlowNetwork.reset` to solve again from scratch.
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    flow = 0
    while True:
        level = _bfs_levels(g, source, sink)
        if not level:
            return flow
        it = list(g.head)
        flow += _blocking_flow(g, source, sink, level, it)
