"""Flow-network representation.

A compact adjacency-list representation for integer-capacity flow
networks, designed for repeated max-flow solves by
:mod:`repro.flow.dinic`.  Arcs are stored in a flat edge array with
paired reverse arcs at ``e ^ 1``, the classic layout for residual-graph
algorithms.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed graph with integer arc capacities.

    Nodes are integers ``0 .. n-1``.  :meth:`add_edge` creates a forward
    arc and its residual reverse arc; capacities live in :attr:`capacity`
    and are mutated in place by the max-flow solver.
    """

    __slots__ = ("n", "head", "to", "next_edge", "capacity", "_orig_capacity")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("flow network needs at least one node")
        self.n = n
        self.head: List[int] = [-1] * n
        self.to: List[int] = []
        self.next_edge: List[int] = []
        self.capacity: List[int] = []
        self._orig_capacity: List[int] = []

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add arc ``u → v`` with capacity ``cap``; returns the arc id.

        The reverse residual arc is created at ``id ^ 1`` with capacity 0.
        """
        if cap < 0:
            raise ValueError(f"capacity must be non-negative, got {cap}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"arc ({u},{v}) out of range for n={self.n}")
        eid = len(self.to)
        # forward arc
        self.to.append(v)
        self.capacity.append(cap)
        self._orig_capacity.append(cap)
        self.next_edge.append(self.head[u])
        self.head[u] = eid
        # reverse arc
        self.to.append(u)
        self.capacity.append(0)
        self._orig_capacity.append(0)
        self.next_edge.append(self.head[v])
        self.head[v] = eid + 1
        return eid

    def add_edges(self, arcs: Iterable[Tuple[int, int, int]]) -> int:
        """Bulk :meth:`add_edge`; returns the id of the first arc added.

        Ids are assigned sequentially: the ``i``-th ``(u, v, cap)`` triple
        gets forward-arc id ``first + 2·i``.  Validation and residual
        layout are exactly those of repeated :meth:`add_edge` calls, with
        one attribute lookup per array instead of per arc.
        """
        n = self.n
        head = self.head
        to = self.to
        nxt = self.next_edge
        capacity = self.capacity
        orig = self._orig_capacity
        eid = len(to)
        first = eid
        for u, v, cap in arcs:
            if cap < 0:
                raise ValueError(f"capacity must be non-negative, got {cap}")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"arc ({u},{v}) out of range for n={n}")
            to.append(v)
            capacity.append(cap)
            orig.append(cap)
            nxt.append(head[u])
            head[u] = eid
            to.append(u)
            capacity.append(0)
            orig.append(0)
            nxt.append(head[v])
            head[v] = eid + 1
            eid += 2
        return first

    def flow_on(self, eid: int) -> int:
        """Flow currently pushed on forward arc ``eid``."""
        return self._orig_capacity[eid] - self.capacity[eid]

    def reset(self) -> None:
        """Restore all capacities to their original values."""
        self.capacity = list(self._orig_capacity)

    def arcs(self) -> List[Tuple[int, int, int, int]]:
        """All forward arcs as ``(id, u, v, capacity_remaining)``."""
        out = []
        for u in range(self.n):
            e = self.head[u]
            while e != -1:
                if e % 2 == 0:
                    out.append((e, u, self.to[e ^ 1], self.capacity[e]))
                e = self.next_edge[e]
        # ``to[e^1]`` above gives the arc's origin; recompute target:
        return [(e, self.to[e ^ 1], self.to[e], c) for (e, _u, _v, c) in out]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowNetwork(n={self.n}, arcs={len(self.to) // 2})"
