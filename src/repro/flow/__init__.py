"""Maximum-flow substrate (Dinic's algorithm on a compact arc list)."""

from .dinic import max_flow
from .graph import FlowNetwork

__all__ = ["FlowNetwork", "max_flow"]
