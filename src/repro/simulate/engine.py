"""Request-serving simulation engine.

Replays a request trace against a placement: each arriving request is
routed to one of the client's assigned servers (round-robin weighted by
the static assignment amounts, so the long-run split matches the
placement exactly), travels the tree path, and is counted against the
server's current unit window.

Outputs per-server load time-series, request latencies (path distance —
the quantity ``dmax`` bounds), and overload accounting: with a
deterministic trace a checker-valid placement must show **zero**
overloaded windows (this is asserted in the integration tests); with a
Poisson trace the overflow probability quantifies the static model's
safety margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.errors import InvalidPlacementError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from .events import EventQueue
from .workload import Request

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Aggregated outcome of a simulation run."""

    horizon: int
    served: int = 0
    latencies: List[float] = field(default_factory=list)
    #: server -> per-unit load vector
    unit_loads: Dict[int, List[int]] = field(default_factory=dict)
    #: (server, unit) pairs whose load exceeded W
    overloads: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else 0.0

    @property
    def mean_latency(self) -> float:
        return (
            sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
        )

    def peak_load(self, server: int) -> int:
        loads = self.unit_loads.get(server, [])
        return max(loads) if loads else 0

    @property
    def overload_fraction(self) -> float:
        """Fraction of (server, unit) windows that exceeded capacity."""
        windows = sum(len(v) for v in self.unit_loads.values())
        return len(self.overloads) / windows if windows else 0.0

    def summary(self) -> str:
        return (
            f"served {self.served} requests over {self.horizon} units; "
            f"latency mean {self.mean_latency:.2f} max {self.max_latency:.2f}; "
            f"{len(self.overloads)} overloaded windows "
            f"({self.overload_fraction * 100:.2f}%)"
        )


class _WeightedRoundRobin:
    """Deterministic weighted request router for one client.

    Implements smooth weighted round-robin: over any ``Σ w`` consecutive
    requests, server ``s`` receives exactly ``w_s`` of them — so the
    simulated per-unit load of a deterministic trace reproduces the
    static assignment.
    """

    __slots__ = ("targets", "weights", "current")

    def __init__(self, targets: Sequence[int], weights: Sequence[int]) -> None:
        self.targets = list(targets)
        self.weights = list(weights)
        self.current = [0] * len(targets)

    def next(self) -> int:
        total = sum(self.weights)
        best = 0
        for k in range(len(self.targets)):
            self.current[k] += self.weights[k]
            if self.current[k] > self.current[best]:
                best = k
        self.current[best] -= total
        return self.targets[best]


def simulate(
    instance: ProblemInstance,
    placement: Placement,
    trace: Sequence[Request],
    horizon: int,
) -> SimulationResult:
    """Replay ``trace`` against ``placement`` and collect metrics."""
    tree = instance.tree
    W = instance.capacity

    routers: Dict[int, _WeightedRoundRobin] = {}
    for c in tree.clients:
        servers = placement.servers_of(c)
        if tree.requests(c) > 0 and not servers:
            raise InvalidPlacementError(
                f"client {c} has demand but no assigned server"
            )
        if servers:
            weights = [placement.assignments[(c, s)] for s in servers]
            routers[c] = _WeightedRoundRobin(servers, weights)

    dist_cache: Dict[Tuple[int, int], float] = {}

    def distance(c: int, s: int) -> float:
        key = (c, s)
        if key not in dist_cache:
            dist_cache[key] = tree.distance_to_ancestor(c, s)
        return dist_cache[key]

    result = SimulationResult(horizon=horizon)
    loads: Dict[int, List[int]] = {
        s: [0] * horizon for s in placement.replicas
    }

    q = EventQueue()
    for req in trace:
        q.push(req.time, req)
    for t, req in q.drain():
        unit = min(int(t), horizon - 1)
        server = routers[req.client].next()
        loads[server][unit] += 1
        result.latencies.append(distance(req.client, server))
        result.served += 1

    result.unit_loads = loads
    for s, vec in loads.items():
        for unit, load in enumerate(vec):
            if load > W:
                result.overloads.append((s, unit))
    return result
