"""Request-trace generation.

The paper's model is stationary — client ``i`` issues ``r_i`` requests
per time unit.  The simulator turns that into an explicit trace over a
horizon of ``T`` time units, either:

* *deterministic* — ``r_i`` requests per unit, evenly spaced (the
  literal reading of the model; per-unit server load equals the static
  assignment exactly), or
* *poisson* — arrivals as a Poisson process of rate ``r_i`` (the
  realistic reading; per-unit load fluctuates around the static
  assignment, letting experiments quantify how much headroom the static
  capacity check leaves).

Both generators share one horizon contract (:func:`validate_horizon`):
a positive integer number of unit windows.  Non-stationary demand
traces — diurnal cycles, flash crowds, Zipf mixtures — live one layer
up in :mod:`repro.replay`, which drives the *dynamic* engine instead of
a fixed placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

import numpy as np

from ..core.tree import Tree

__all__ = [
    "Request",
    "deterministic_trace",
    "poisson_trace",
    "iter_units",
    "validate_horizon",
]


@dataclass(frozen=True)
class Request:
    """One request: issued by ``client`` at ``time``."""

    time: float
    client: int


def validate_horizon(horizon: Union[int, float]) -> int:
    """Normalise a horizon to a positive integer number of unit windows.

    Accepts an ``int`` or an integral ``float`` (``5.0`` is five units);
    anything non-positive, non-finite or fractional raises
    ``ValueError``.  Both trace generators and the replay layer share
    this contract, so ``deterministic_trace`` and ``poisson_trace`` can
    no longer drift apart on what "horizon" means.
    """
    if isinstance(horizon, bool) or not isinstance(horizon, (int, float)):
        raise ValueError(
            f"horizon must be a number of unit windows, got "
            f"{type(horizon).__name__}"
        )
    if not math.isfinite(horizon):
        raise ValueError(f"horizon must be finite, got {horizon!r}")
    if horizon != int(horizon):
        raise ValueError(
            f"horizon must be a whole number of unit windows, got {horizon!r}"
        )
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    return int(horizon)


def deterministic_trace(tree: Tree, horizon: Union[int, float]) -> List[Request]:
    """Evenly spaced arrivals: ``r_i`` per unit for ``horizon`` units."""
    T = validate_horizon(horizon)
    out: List[Request] = []
    for c in tree.clients:
        r = tree.requests(c)
        if r == 0:
            continue
        step = 1.0 / r
        for unit in range(T):
            for k in range(r):
                out.append(Request(unit + k * step, c))
    out.sort(key=lambda q: q.time)
    return out


def poisson_trace(
    tree: Tree, horizon: Union[int, float], seed: int = 0
) -> List[Request]:
    """Poisson arrivals at rate ``r_i`` per client over ``horizon`` units."""
    T = validate_horizon(horizon)
    rng = np.random.default_rng(seed)
    out: List[Request] = []
    for c in tree.clients:
        r = tree.requests(c)
        if r == 0:
            continue
        n = rng.poisson(r * T)
        times = rng.uniform(0.0, T, size=n)
        out.extend(Request(float(t), c) for t in times)
    out.sort(key=lambda q: q.time)
    return out


def iter_units(
    requests: List[Request], horizon: Optional[Union[int, float]] = None
) -> Iterator[List[Request]]:
    """Group a sorted trace into unit-length windows ``[k, k+1)``.

    Windows are anchored at unit 0 — wall clock, not the first arrival
    — and idle windows are yielded as empty lists, so the windows
    partition ``[0, horizon)`` exactly: a trace whose first request
    arrives at ``t=2.5`` yields two empty windows first instead of
    silently dropping them, and a trace that goes quiet before the
    horizon still yields its trailing idle windows.  Without an explicit
    ``horizon`` the iteration ends after the window containing the last
    request.
    """
    T = None if horizon is None else validate_horizon(horizon)
    if requests:
        first = requests[0].time
        if first < 0:
            raise ValueError(f"request at negative time {first!r}")
    unit: List[Request] = []
    current = 0
    for q in requests:
        k = int(q.time)
        if k < current:
            raise ValueError("trace is not sorted by time")
        if T is not None and k >= T:
            break
        while k > current:
            yield unit
            unit = []
            current += 1
        unit.append(q)
    if requests or T is not None:
        yield unit
        current += 1
    if T is not None:
        while current < T:
            yield []
            current += 1
