"""Request-trace generation.

The paper's model is stationary — client ``i`` issues ``r_i`` requests
per time unit.  The simulator turns that into an explicit trace over a
horizon of ``T`` time units, either:

* *deterministic* — ``r_i`` requests per unit, evenly spaced (the
  literal reading of the model; per-unit server load equals the static
  assignment exactly), or
* *poisson* — arrivals as a Poisson process of rate ``r_i`` (the
  realistic reading; per-unit load fluctuates around the static
  assignment, letting experiments quantify how much headroom the static
  capacity check leaves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from ..core.tree import Tree

__all__ = ["Request", "deterministic_trace", "poisson_trace", "iter_units"]


@dataclass(frozen=True)
class Request:
    """One request: issued by ``client`` at ``time``."""

    time: float
    client: int


def deterministic_trace(tree: Tree, horizon: int) -> List[Request]:
    """Evenly spaced arrivals: ``r_i`` per unit for ``horizon`` units."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    out: List[Request] = []
    for c in tree.clients:
        r = tree.requests(c)
        if r == 0:
            continue
        step = 1.0 / r
        for unit in range(horizon):
            for k in range(r):
                out.append(Request(unit + k * step, c))
    out.sort(key=lambda q: q.time)
    return out


def poisson_trace(
    tree: Tree, horizon: float, seed: int = 0
) -> List[Request]:
    """Poisson arrivals at rate ``r_i`` per client over ``horizon``."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    rng = np.random.default_rng(seed)
    out: List[Request] = []
    for c in tree.clients:
        r = tree.requests(c)
        if r == 0:
            continue
        n = rng.poisson(r * horizon)
        times = rng.uniform(0.0, horizon, size=n)
        out.extend(Request(float(t), c) for t in times)
    out.sort(key=lambda q: q.time)
    return out


def iter_units(requests: List[Request]) -> Iterator[List[Request]]:
    """Group a sorted trace into unit-length windows ``[k, k+1)``."""
    if not requests:
        return
    unit: List[Request] = []
    current = int(requests[0].time)
    for q in requests:
        k = int(q.time)
        while k > current:
            yield unit
            unit = []
            current += 1
        unit.append(q)
    yield unit
