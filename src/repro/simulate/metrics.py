"""Terminal-friendly metrics for simulation results.

ASCII histogram and utilisation summaries for
:class:`~repro.simulate.engine.SimulationResult` — no plotting
dependency exists offline, and for operator-style inspection a text
histogram is sufficient.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .engine import SimulationResult

__all__ = ["ascii_histogram", "latency_histogram", "utilisation_table"]


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Fixed-width ASCII histogram of ``values``."""
    if len(values) == 0:
        return f"{title}(no data)" if title else "(no data)"
    arr = np.asarray(values, dtype=float)
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines: List[str] = [title] if title else []
    for k in range(len(counts)):
        bar = "#" * max(0, round(counts[k] / peak * width))
        lines.append(
            f"[{edges[k]:8.2f}, {edges[k + 1]:8.2f}) "
            f"{counts[k]:>7} {bar}"
        )
    lines.append(
        f"n={len(arr)} mean={arr.mean():.2f} p50={np.percentile(arr, 50):.2f} "
        f"p95={np.percentile(arr, 95):.2f} max={arr.max():.2f}"
    )
    return "\n".join(lines)


def latency_histogram(result: SimulationResult, bins: int = 10) -> str:
    """Histogram of request latencies from a simulation run."""
    return ascii_histogram(
        result.latencies, bins=bins, title="request latency"
    )


def utilisation_table(result: SimulationResult, capacity: int) -> str:
    """Per-server utilisation: mean/peak window load vs capacity."""
    lines = [f"{'server':>8} {'mean':>8} {'peak':>6} {'util%':>7} {'overloads':>10}"]
    overload_counts = {}
    for s, unit in result.overloads:
        overload_counts[s] = overload_counts.get(s, 0) + 1
    for s in sorted(result.unit_loads):
        loads = result.unit_loads[s]
        mean = sum(loads) / len(loads) if loads else 0.0
        peak = max(loads) if loads else 0
        lines.append(
            f"{s:>8} {mean:>8.1f} {peak:>6} {mean / capacity * 100:>6.1f}% "
            f"{overload_counts.get(s, 0):>10}"
        )
    return "\n".join(lines)
