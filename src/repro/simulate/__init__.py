"""Discrete-event request-serving simulator and online re-placement runs.

Two modes:

* **offline** — :func:`simulate` replays a request trace against one
  fixed placement (latencies, per-unit loads, overload accounting);
* **online** — :func:`run_online` replays a *change-event* trace
  against the :mod:`repro.dynamic` engine and measures repair latency
  against from-scratch re-solve latency (see ``docs/simulation.md``).

Traffic generators live in :mod:`~repro.simulate.workload`, failure
injection and greedy repair in :mod:`~repro.simulate.failures`.
"""

from .engine import SimulationResult, simulate
from .events import EventQueue
from .failures import RepairResult, failure_study, repair_placement
from .metrics import ascii_histogram, latency_histogram, utilisation_table
from .online import OnlineResult, OnlineStep, run_online
from .workload import (
    Request,
    deterministic_trace,
    iter_units,
    poisson_trace,
    validate_horizon,
)

__all__ = [
    "OnlineResult",
    "OnlineStep",
    "run_online",
    "EventQueue",
    "Request",
    "deterministic_trace",
    "poisson_trace",
    "iter_units",
    "validate_horizon",
    "simulate",
    "SimulationResult",
    "RepairResult",
    "repair_placement",
    "failure_study",
    "ascii_histogram",
    "latency_histogram",
    "utilisation_table",
]
