"""Discrete-event request-serving simulator."""

from .engine import SimulationResult, simulate
from .events import EventQueue
from .failures import RepairResult, failure_study, repair_placement
from .metrics import ascii_histogram, latency_histogram, utilisation_table
from .workload import Request, deterministic_trace, iter_units, poisson_trace

__all__ = [
    "EventQueue",
    "Request",
    "deterministic_trace",
    "poisson_trace",
    "iter_units",
    "simulate",
    "SimulationResult",
    "RepairResult",
    "repair_placement",
    "failure_study",
    "ascii_histogram",
    "latency_histogram",
    "utilisation_table",
]
