"""Discrete-event kernel.

A minimal, allocation-light event queue: a binary heap of
``(time, sequence, payload)`` with a monotonically increasing sequence
number so simultaneous events pop in insertion order (deterministic
replays — essential for seeded experiments).
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, Optional, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event queue with deterministic tie-breaking."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time``."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        t, _seq, payload = heapq.heappop(self._heap)
        return t, payload

    def peek_time(self) -> Optional[float]:
        """Earliest scheduled time, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Tuple[float, Any]]:
        """Iterate events in time order until the queue is empty."""
        while self._heap:
            yield self.pop()
