"""Replica-failure injection and repair.

The paper's Section 1 motivates smart placement partly through fault
tolerance.  This module quantifies that: given a valid placement, kill
replicas and *repair* the placement by re-routing the orphaned demand —
to surviving replicas with spare capacity where eligibility allows,
opening fresh replicas otherwise.

Repair strategy (greedy, checker-validated downstream):

1. orphaned demand is collected per client (whole clients under Single,
   per-assignment amounts under Multiple);
2. clients are processed most-constrained-first (fewest eligible
   surviving hosts, then largest orphaned amount);
3. each orphan goes to the deepest eligible *open* replica with room
   (deepest = closest, preserving distance slack); under Multiple it
   may split across several;
4. remaining demand opens a new replica at the deepest eligible
   non-failed node, client itself included.

Failed nodes never host again (they model crashed machines).  Repair
returns ``None`` when some orphan cannot be served — e.g. a pinned
client whose only eligible host was the failed node itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy

__all__ = ["RepairResult", "repair_placement", "failure_study"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of repairing a placement after failures."""

    placement: Placement
    failed: Tuple[int, ...]
    moved_requests: int
    new_replicas: Tuple[int, ...]

    @property
    def replica_overhead(self) -> int:
        """Extra replicas the repair opened."""
        return len(self.new_replicas)


def repair_placement(
    instance: ProblemInstance,
    placement: Placement,
    failed: Iterable[int],
) -> Optional[RepairResult]:
    """Repair ``placement`` after the ``failed`` replicas crash.

    Returns ``None`` if some orphaned demand cannot be re-hosted (the
    instance is unserviceable without the failed machines).
    """
    tree = instance.tree
    W = instance.capacity
    failed_set: Set[int] = {int(f) for f in failed}
    single = instance.policy is Policy.SINGLE

    # Surviving assignment and loads.
    assignments: Dict[Tuple[int, int], int] = {}
    load: Dict[int, int] = {
        r: 0 for r in placement.replicas if r not in failed_set
    }
    orphans: Dict[int, int] = {}
    for a in placement.iter_assignments():
        if a.server in failed_set:
            orphans[a.client] = orphans.get(a.client, 0) + a.amount
        else:
            assignments[(a.client, a.server)] = a.amount
            load[a.server] = load.get(a.server, 0) + a.amount

    if single:
        # A Single client must stay whole: pull its surviving portion
        # (there is none by policy, but be defensive) into the orphan.
        for c in list(orphans):
            extra = [
                (cc, s) for (cc, s) in assignments if cc == c
            ]
            for key in extra:
                orphans[c] += assignments.pop(key)
                load[key[1]] -= placement.assignments[key]

    moved = sum(orphans.values())
    new_replicas: List[int] = []

    def eligible_hosts(c: int) -> List[int]:
        """Non-failed candidate hosts, deepest (closest) first."""
        return [
            s
            for s, _d in tree.eligible_servers(c, instance.dmax)
            if s not in failed_set
        ]

    order = sorted(
        orphans,
        key=lambda c: (len(eligible_hosts(c)), -orphans[c]),
    )
    for c in order:
        need = orphans[c]
        hosts = eligible_hosts(c)
        if single:
            placed = False
            # Deepest open replica with room, else open the deepest
            # candidate that fits the whole client.
            for s in hosts:
                if s in load and load[s] + need <= W:
                    load[s] += need
                    assignments[(c, s)] = assignments.get((c, s), 0) + need
                    placed = True
                    break
            if not placed:
                for s in hosts:
                    if s not in load and need <= W:
                        load[s] = need
                        new_replicas.append(s)
                        assignments[(c, s)] = need
                        placed = True
                        break
            if not placed:
                return None
        else:
            # Multiple: fill open replicas deepest-first, then open new
            # ones deepest-first.
            for opening in (False, True):
                for s in hosts:
                    if need == 0:
                        break
                    if (s in load) == opening:
                        continue
                    if opening:
                        load[s] = 0
                        new_replicas.append(s)
                    take = min(need, W - load[s])
                    if take > 0:
                        load[s] += take
                        assignments[(c, s)] = (
                            assignments.get((c, s), 0) + take
                        )
                        need -= take
                if need == 0:
                    break
            if need > 0:
                return None

    repaired = Placement(load.keys(), assignments)
    return RepairResult(
        repaired, tuple(sorted(failed_set)), moved, tuple(new_replicas)
    )


def failure_study(
    instance: ProblemInstance,
    placement: Placement,
    *,
    n_failures: int = 1,
    trials: int = 20,
    seed: int = 0,
) -> List[Optional[RepairResult]]:
    """Randomly fail ``n_failures`` replicas, ``trials`` times.

    Returns one :class:`RepairResult` (or ``None`` for unrepairable
    scenarios) per trial — feed the results to the analysis layer for
    overhead distributions.
    """
    rng = np.random.default_rng(seed)
    replicas = sorted(placement.replicas)
    if n_failures > len(replicas):
        raise ValueError(
            f"cannot fail {n_failures} of {len(replicas)} replicas"
        )
    out: List[Optional[RepairResult]] = []
    for _ in range(trials):
        failed = rng.choice(replicas, size=n_failures, replace=False)
        out.append(repair_placement(instance, placement, failed))
    return out
