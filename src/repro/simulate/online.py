"""Online-mode simulation: drive a :class:`DynamicPlacement` with events.

The offline simulator replays a request trace against one fixed
placement; the online mode instead replays a *change-event* trace
against the re-placement engine and measures what operating a standing
placement costs:

* **repair latency** — wall time of the incremental :meth:`apply`;
* **resolve latency** — wall time of a cold from-scratch solve of the
  same snapshot (measured every step for the repair-vs-resolve
  comparison);
* **cost parity** — whether the incrementally repaired placement
  matches the cold solve's replica count (it must, whenever the engine
  reports ``incremental`` mode — that invariant is property-tested);
* **repair success rate** and fallback counts.

:func:`run_online` returns an :class:`OnlineResult` of per-step rows;
:func:`repro.analysis.online_report` renders the summary table the CLI
prints for ``repro simulate --online``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.instance import ProblemInstance
from ..dynamic import (
    ChangeEvent,
    DynamicPlacement,
    describe_events,
    random_event_trace,
)

__all__ = ["OnlineStep", "OnlineResult", "run_online"]


@dataclass(frozen=True)
class OnlineStep:
    """One event batch folded into the standing placement."""

    step: int
    events: str
    mode: str
    ok: bool
    repair_s: float
    resolve_s: float
    cost: Optional[int]
    cost_full: Optional[int]
    nodes_reused: int
    nodes_recomputed: int
    fallback_reason: Optional[str] = None
    error: Optional[str] = None

    @property
    def speedup(self) -> Optional[float]:
        """Cold-resolve time over repair time (>1 means repair wins)."""
        if not self.ok or self.repair_s <= 0:
            return None
        return self.resolve_s / self.repair_s

    @property
    def cost_matches(self) -> Optional[bool]:
        """Did incremental repair match the cold solve's objective?"""
        if self.cost is None or self.cost_full is None:
            return None
        return self.cost == self.cost_full


@dataclass
class OnlineResult:
    """Aggregated outcome of one online run."""

    solver: str
    n_nodes: int
    steps: List[OnlineStep] = field(default_factory=list)

    # -- aggregates ----------------------------------------------------
    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_ok(self) -> int:
        return sum(1 for s in self.steps if s.ok)

    @property
    def success_rate(self) -> float:
        """Fraction of event batches the engine repaired successfully."""
        return self.n_ok / self.n_steps if self.steps else 0.0

    @property
    def n_fallbacks(self) -> int:
        return sum(1 for s in self.steps if s.mode != "incremental")

    @property
    def speedups(self) -> List[float]:
        return [s.speedup for s in self.steps if s.speedup is not None]

    @property
    def mean_speedup(self) -> float:
        sp = self.speedups
        return sum(sp) / len(sp) if sp else 0.0

    @property
    def median_speedup(self) -> float:
        sp = sorted(self.speedups)
        return sp[len(sp) // 2] if sp else 0.0

    @property
    def cost_match_rate(self) -> float:
        """Fraction of comparable steps with incremental == cold cost."""
        comparable = [s.cost_matches for s in self.steps if s.cost_matches is not None]
        if not comparable:
            return 1.0
        return sum(comparable) / len(comparable)

    @property
    def cost_drift(self) -> int:
        """Total extra replicas incremental repair paid over cold solves."""
        return sum(
            (s.cost - s.cost_full)
            for s in self.steps
            if s.cost is not None and s.cost_full is not None
        )

    @property
    def total_repair_s(self) -> float:
        return sum(s.repair_s for s in self.steps)

    @property
    def total_resolve_s(self) -> float:
        return sum(s.resolve_s for s in self.steps)

    def summary(self) -> str:
        """One-paragraph human summary (the CLI's closing line)."""
        return (
            f"online[{self.solver}] {self.n_ok}/{self.n_steps} repairs ok "
            f"({self.success_rate * 100:.0f}%), {self.n_fallbacks} fallbacks; "
            f"repair {self.total_repair_s * 1e3:.1f}ms vs resolve "
            f"{self.total_resolve_s * 1e3:.1f}ms "
            f"(speedup mean {self.mean_speedup:.2f}x median "
            f"{self.median_speedup:.2f}x); cost parity "
            f"{self.cost_match_rate * 100:.0f}%, drift {self.cost_drift:+d} replicas"
        )


def run_online(
    instance: ProblemInstance,
    *,
    steps: int = 20,
    events_per_step: int = 1,
    seed: int = 0,
    p_fail: float = 0.0,
    p_capacity: float = 0.0,
    solver: Optional[str] = None,
    compare_full: bool = True,
    trace: Optional[Sequence[Sequence[ChangeEvent]]] = None,
) -> Tuple[DynamicPlacement, OnlineResult]:
    """Drive a fresh engine through a (generated or given) event trace.

    Parameters
    ----------
    instance:
        The initial snapshot (solved cold to seed the engine).
    steps / events_per_step / seed / p_fail / p_capacity:
        Trace-generation knobs, forwarded to
        :func:`repro.dynamic.random_event_trace` when ``trace`` is not
        supplied.
    solver:
        Engine solver choice (see :class:`DynamicPlacement`).
    compare_full:
        When True (default) every step also runs a cold from-scratch
        solve for the repair-vs-resolve comparison; disable to measure
        pure repair throughput.

    Returns
    -------
    ``(engine, result)`` — the engine (standing placement, failed
    hosts) and the per-step measurement rows.
    """
    engine = DynamicPlacement(instance, solver=solver)
    if trace is None:
        trace = random_event_trace(
            instance,
            steps=steps,
            events_per_step=events_per_step,
            seed=seed,
            p_fail=p_fail,
            p_capacity=p_capacity,
        )
    result = OnlineResult(solver=engine.solver_name, n_nodes=len(instance.tree))
    for k, batch in enumerate(trace):
        outcome = engine.apply(batch)
        resolve_s = 0.0
        cost_full = None
        if compare_full:
            cold, resolve_s = engine.resolve_full()
            cost_full = cold.n_replicas if cold is not None else None
        result.steps.append(
            OnlineStep(
                step=k,
                events=describe_events(batch),
                mode=outcome.mode,
                ok=outcome.ok,
                repair_s=outcome.repair_s,
                resolve_s=resolve_s,
                cost=outcome.cost,
                cost_full=cost_full,
                nodes_reused=outcome.stats.nodes_reused,
                nodes_recomputed=outcome.stats.nodes_recomputed,
                fallback_reason=outcome.fallback_reason,
                error=outcome.error,
            )
        )
    return engine, result
