"""ASCII rendering of distribution trees and placements.

Terminal-friendly visualisation used by the CLI and the examples — no
plotting dependency is available offline, and for trees of the sizes the
paper discusses a text drawing is actually more legible than a graph
layout.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.instance import ProblemInstance
from ..core.placement import Placement

__all__ = ["render_tree", "render_placement_summary"]


def render_tree(
    instance: ProblemInstance, placement: Optional[Placement] = None
) -> str:
    """Indented tree drawing.

    Replica nodes are tagged ``[R]``; client lines show the demand and,
    when a placement is given, which server(s) process it.
    """
    t = instance.tree
    replicas = placement.replicas if placement is not None else frozenset()
    lines: List[str] = []

    # Iterative DFS carrying the drawing prefix.
    stack = [(t.root, "", True)]
    while stack:
        v, prefix, is_last = stack.pop()
        connector = "" if v == t.root else ("`-- " if is_last else "|-- ")
        tag = " [R]" if v in replicas else ""
        if t.is_leaf(v):
            served = ""
            if placement is not None and t.requests(v) > 0:
                served = " -> " + ",".join(
                    f"{s}(x{placement.assignments[(v, s)]})"
                    for s in placement.servers_of(v)
                )
            body = f"c{v} r={t.requests(v)}{tag}{served}"
        else:
            body = f"n{v}{tag}"
        if v == t.root:
            lines.append(body)
            child_prefix = ""
        else:
            dist = f" ({t.delta(v):g})"
            lines.append(prefix + connector + body + dist)
            child_prefix = prefix + ("    " if is_last else "|   ")
        kids = t.children(v)
        for idx in range(len(kids) - 1, -1, -1):
            stack.append((kids[idx], child_prefix, idx == len(kids) - 1))
    return "\n".join(lines)


def render_placement_summary(
    instance: ProblemInstance, placement: Placement
) -> str:
    """One-paragraph summary: replica count, loads, utilisation."""
    loads = placement.loads()
    W = instance.capacity
    util = (
        sum(loads.values()) / (W * len(loads)) * 100 if loads else 0.0
    )
    lines = [
        f"variant        : {instance.variant}",
        f"replicas |R|   : {placement.n_replicas}",
        f"total demand   : {instance.tree.total_requests}",
        f"capacity W     : {W}",
        f"mean utilisation: {util:.1f}%",
    ]
    for s in sorted(loads):
        lines.append(f"  server {s:>4}: load {loads[s]:>6} / {W}")
    return "\n".join(lines)
