"""Mesh-extracted instances: ISP-style POP graphs turned into trees.

The paper's model assumes a tree; general networks are handled by first
extracting a good spanning tree (Section 1).  This module packages that
pipeline — previously only demonstrated by ``examples/isp_mesh_to_tree.py``
— as a registered generator, so sweeps, the replay layer, and CI can ask
for mesh-extracted instances by spec::

    make_instance({"kind": "isp_mesh", "n_pops": 6000, "seed": 3,
                   "capacity": 300, "dmax": 7.0})

:func:`build_isp_mesh` draws the synthetic ISP topology (ring backbone
+ random chords + per-POP subscriber demand) and :func:`isp_mesh` runs
the shortest-path-tree extraction from the datacenter POP.  Both are
deterministic per ``(n_pops, seed)``: the mesh is drawn from one
``default_rng(seed)`` stream and Dijkstra tie-breaks by vertex index,
so the same spec always yields a byte-identical instance — the property
the replay fingerprints and the CI smoke job rely on.

A mesh of ``n_pops`` POPs extracts to roughly ``1.6 × n_pops`` tree
nodes (every demanding transit POP gains a zero-distance client stub),
so ``n_pops=6000`` lands in the 10k-node range the large-scale replay
work targets.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.instance import ProblemInstance
from ..core.policies import Policy
from ..graphs import WeightedGraph, extract_spanning_instance

__all__ = ["build_isp_mesh", "isp_mesh"]


def build_isp_mesh(
    n_pops: int = 24,
    seed: int = 3,
    *,
    demand_range: Tuple[int, int] = (20, 120),
) -> Tuple[WeightedGraph, Dict[int, int]]:
    """Random connected ISP mesh: ring backbone + random chords.

    Vertex 0 is the datacenter (no subscriber demand); every other POP
    draws an integer demand from ``demand_range`` (inclusive).  Link
    latencies: ring edges uniform in [1.0, 2.5), chords in [2.0, 6.0).
    Returns ``(graph, demands)``.
    """
    if n_pops < 3:
        raise ValueError(f"need at least 3 POPs for a ring, got {n_pops}")
    lo, hi = demand_range
    if not 0 < lo <= hi:
        raise ValueError(f"bad demand range [{lo}, {hi}]")
    rng = np.random.default_rng(seed)
    g = WeightedGraph(n_pops)
    # Ring backbone guarantees connectivity.
    for i in range(n_pops):
        g.add_edge(i, (i + 1) % n_pops, float(rng.uniform(1.0, 2.5)))
    # Chords create shortcuts (what makes tree extraction non-trivial).
    added = set()
    for _ in range(n_pops):
        u, v = sorted(rng.integers(0, n_pops, size=2))
        if u != v and abs(u - v) > 1 and (u, v) not in added:
            g.add_edge(int(u), int(v), float(rng.uniform(2.0, 6.0)))
            added.add((u, v))
    demands = {
        int(v): int(rng.integers(lo, hi + 1)) for v in range(1, n_pops)
    }
    return g, demands


def isp_mesh(
    n_pops: int = 24,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    demand_range: Tuple[int, int] = (20, 120),
    seed: int = 3,
) -> ProblemInstance:
    """Mesh-extracted instance: shortest-path tree of a random ISP mesh.

    Draws the mesh with :func:`build_isp_mesh` and extracts the
    shortest-path tree rooted at the datacenter POP (vertex 0), so tree
    distances equal mesh distances and a ``dmax`` is a genuine latency
    SLA on the original network.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    lo, hi = demand_range
    if hi > capacity:
        raise ValueError(
            f"demand range upper bound {hi} exceeds capacity {capacity}; "
            "single-server feasibility needs r_i <= W"
        )
    g, demands = build_isp_mesh(n_pops, seed, demand_range=demand_range)
    inst, _client_of = extract_spanning_instance(
        g,
        root=0,
        demands=demands,
        capacity=capacity,
        dmax=dmax,
        policy=policy,
        name=f"isp_mesh(n_pops={n_pops},seed={seed})",
    )
    return inst
