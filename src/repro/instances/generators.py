"""Random and structured instance generators.

All generators are deterministic given a ``seed`` (numpy
``default_rng``), return :class:`~repro.core.instance.ProblemInstance`
objects, and guarantee the structural invariants of the model: clients
are exactly the leaves, internal nodes carry no requests, every client
demand respects ``r_i ≤ W`` unless explicitly asked otherwise.

Topologies:

* :func:`random_tree` — general Δ-ary random topology (internal skeleton
  grown by preferential attachment under an arity budget, clients hung
  on skeleton nodes).
* :func:`random_binary_tree` — arity ≤ 2 (for the *Bin* variants).
* :func:`caterpillar` — a long spine with one client per spine node:
  deep trees for scaling experiments.
* :func:`broom` — a spine ending in a fan of clients: concentrates
  demand far from the root, stressing the distance constraint.
* :func:`star` — one internal node, all clients attached: degenerates to
  pure bin packing.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from ..core.instance import ProblemInstance
from ..core.policies import Policy
from ..core.tree import Tree, TreeBuilder

__all__ = [
    "random_tree",
    "random_binary_tree",
    "caterpillar",
    "broom",
    "star",
    "GENERATORS",
    "make_instance",
]


def _draw_requests(rng: np.random.Generator, n: int, lo: int, hi: int) -> np.ndarray:
    if lo > hi:
        raise ValueError(f"empty request range [{lo}, {hi}]")
    return rng.integers(lo, hi + 1, size=n)


def random_tree(
    n_internal: int,
    n_clients: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    max_arity: int = 4,
    request_range: tuple = (1, None),
    delta_range: tuple = (1.0, 3.0),
    seed: int = 0,
) -> ProblemInstance:
    """A random Δ-ary instance.

    The internal skeleton is grown by attaching each new internal node to
    a uniformly random internal node that still has arity budget (one
    slot is reserved on every childless internal node so it can receive
    a client and stay internal).  Clients are then distributed uniformly
    over remaining slots, with at least one client under every childless
    skeleton node.

    ``request_range=(lo, hi)`` draws integer demands uniformly;
    ``hi=None`` means the capacity ``W`` (so ``r_i ≤ W`` always holds).
    """
    if n_internal < 1:
        raise ValueError("need at least one internal node (the root)")
    if n_clients < 1:
        raise ValueError("need at least one client")
    if max_arity < 2:
        raise ValueError("max_arity must be at least 2")
    rng = np.random.default_rng(seed)
    lo, hi = request_range
    hi = capacity if hi is None else hi

    b = TreeBuilder()
    root = b.add_root()
    internal = [root]
    slots = {root: max_arity}
    has_child = {root: False}

    def draw_delta() -> float:
        return float(rng.uniform(delta_range[0], delta_range[1]))

    for _ in range(n_internal - 1):
        open_nodes = [v for v in internal if slots[v] >= 1]
        host = int(rng.choice(open_nodes))
        node = b.add(host, delta=draw_delta())
        slots[host] -= 1
        has_child[host] = True
        internal.append(node)
        slots[node] = max_arity
        has_child[node] = False

    # Childless internal nodes must each get one client or they would be
    # leaves (and hence clients) themselves.
    childless = [v for v in internal if not has_child[v]]
    if n_clients < len(childless):
        raise ValueError(
            f"{len(childless)} skeleton leaves need a client each but only "
            f"{n_clients} clients requested; increase n_clients or reduce "
            "n_internal"
        )
    demands = _draw_requests(rng, n_clients, lo, hi)
    k = 0
    for v in childless:
        b.add(v, delta=draw_delta(), requests=int(demands[k]))
        slots[v] -= 1
        has_child[v] = True
        k += 1
    while k < n_clients:
        open_nodes = [v for v in internal if slots[v] >= 1]
        if not open_nodes:
            raise ValueError(
                "arity budget exhausted: raise max_arity or n_internal"
            )
        host = int(rng.choice(open_nodes))
        b.add(host, delta=draw_delta(), requests=int(demands[k]))
        slots[host] -= 1
        k += 1

    return ProblemInstance(
        b.build(), capacity, dmax, policy, name=f"random(seed={seed})"
    )


def random_binary_tree(
    n_internal: int,
    n_clients: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.MULTIPLE,
    request_range: tuple = (1, None),
    delta_range: tuple = (1.0, 3.0),
    seed: int = 0,
) -> ProblemInstance:
    """A random binary instance (arity ≤ 2), default Multiple policy."""
    return random_tree(
        n_internal,
        n_clients,
        capacity=capacity,
        dmax=dmax,
        policy=policy,
        max_arity=2,
        request_range=request_range,
        delta_range=delta_range,
        seed=seed,
    )


def caterpillar(
    length: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    request_range: tuple = (1, None),
    delta: float = 1.0,
    seed: int = 0,
) -> ProblemInstance:
    """A spine of ``length`` internal nodes, one client per spine node.

    Binary (every spine node has the next spine node and one client),
    maximally deep — the stress topology for recursion-free traversals
    and the scaling benchmark E9.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = np.random.default_rng(seed)
    lo, hi = request_range
    hi = capacity if hi is None else hi
    demands = _draw_requests(rng, length, lo, hi)

    b = TreeBuilder()
    spine = b.add_root()
    for k in range(length):
        b.add(spine, delta=delta, requests=int(demands[k]))
        if k < length - 1:
            spine = b.add(spine, delta=delta)
    return ProblemInstance(
        b.build(), capacity, dmax, policy, name=f"caterpillar({length})"
    )


def broom(
    handle: int,
    n_clients: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    request_range: tuple = (1, None),
    delta: float = 1.0,
    seed: int = 0,
) -> ProblemInstance:
    """A spine of ``handle`` nodes ending in a fan of ``n_clients``.

    All demand sits at depth ``handle`` — with a tight ``dmax`` the fan
    must be served locally, exercising the distance rules.
    """
    if handle < 1 or n_clients < 1:
        raise ValueError("handle and n_clients must be >= 1")
    rng = np.random.default_rng(seed)
    lo, hi = request_range
    hi = capacity if hi is None else hi
    demands = _draw_requests(rng, n_clients, lo, hi)

    b = TreeBuilder()
    node = b.add_root()
    for _ in range(handle - 1):
        node = b.add(node, delta=delta)
    for k in range(n_clients):
        b.add(node, delta=delta, requests=int(demands[k]))
    return ProblemInstance(
        b.build(), capacity, dmax, policy, name=f"broom({handle},{n_clients})"
    )


# ----------------------------------------------------------------------
# Spec-based construction (used by the sweep runner, whose tasks must be
# picklable and regenerate instances deterministically inside workers).
# ----------------------------------------------------------------------

#: Generator name -> callable, for :func:`make_instance` specs.  The
#: runner's corpus and any user-supplied sweep configuration reference
#: generators by these names.
GENERATORS: Dict[str, Callable[..., ProblemInstance]] = {}


def _register_generators() -> None:
    # Lazy imports: the scenario library lives above this layer in the
    # stack (it imports core/ only), so pulling it in here at call time
    # keeps module import acyclic while letting specs name adversarial
    # families (``kind="scenario"``) next to the plain topologies.
    from .families import binomial, cdn_hierarchy, full_kary
    from .mesh import isp_mesh
    from ..scenarios.families import scenario

    GENERATORS.update(
        random_tree=random_tree,
        random_binary_tree=random_binary_tree,
        caterpillar=caterpillar,
        broom=broom,
        star=star,
        full_kary=full_kary,
        binomial=binomial,
        cdn_hierarchy=cdn_hierarchy,
        isp_mesh=isp_mesh,
        scenario=scenario,
    )


def make_instance(spec: Mapping) -> ProblemInstance:
    """Build an instance from a plain-dict spec.

    A spec is ``{"kind": <generator name>, "name": <id>, **params}``;
    ``params`` are the generator's keyword arguments with JSON-friendly
    encodings (``policy`` as ``"single"``/``"multiple"``,
    ``request_range`` as a two-element list).  Raises ``KeyError`` for
    an unknown generator kind.
    """
    if not GENERATORS:
        _register_generators()
    spec = dict(spec)
    kind = spec.pop("kind")
    name = spec.pop("name", None)
    try:
        gen = GENERATORS[kind]
    except KeyError:
        known = ", ".join(sorted(GENERATORS))
        raise KeyError(f"unknown generator kind {kind!r}; known: {known}") from None
    if "policy" in spec and not isinstance(spec["policy"], Policy):
        spec["policy"] = Policy(str(spec["policy"]))
    if "request_range" in spec and spec["request_range"] is not None:
        lo, hi = spec["request_range"]
        spec["request_range"] = (lo, hi)
    inst = gen(**spec)
    if name:
        inst = ProblemInstance(
            inst.tree, inst.capacity, inst.dmax, inst.policy, name=str(name)
        )
    return inst


def star(
    n_clients: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    request_range: tuple = (1, None),
    delta: float = 1.0,
    seed: int = 0,
) -> ProblemInstance:
    """One internal root with ``n_clients`` children: pure bin packing."""
    return broom(
        1,
        n_clients,
        capacity=capacity,
        dmax=dmax,
        policy=policy,
        request_range=request_range,
        delta=delta,
        seed=seed,
    )
