"""The paper's tight worst-case instance families.

Two constructions show the approximation factors of Theorems 3 and 4
cannot be improved:

* :func:`single_gen_tight_instance` — the family ``I_m`` of Fig. 3, on
  which ``single-gen`` opens ``m(Δ+1)`` replicas while ``m+1`` suffice,
  so the ratio tends to ``Δ+1``.
* :func:`single_nod_tight_instance` — the family of Fig. 4, on which
  ``single-nod`` opens ``2K`` replicas while ``K+1`` suffice, so the
  ratio tends to 2.

Both builders also return the paper's *hand-crafted optimal* placement
(checker-validated in the tests), so benchmarks can report exact ratios
without running the exponential exact solver on large members of the
family.

Reconstruction note (Fig. 3): the HAL text describes the figure rather
than tabulating it; the request values below are re-derived from the
proof's arithmetic and reproduce every number the text states — the
children of ``n_{i,2}`` sum to ``mΔ + (Δ-2)·1 + 2 = mΔ + Δ > W``, the
optimum serves exactly ``W = mΔ + Δ - 1`` at each ``n_{i,1}`` and
``mΔ`` at the root, and the total demand is ``m(mΔ + 2Δ - 1)``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = [
    "single_gen_tight_instance",
    "single_nod_tight_instance",
]


def single_gen_tight_instance(
    m: int, arity: int
) -> Tuple[ProblemInstance, Placement]:
    """Build ``I_m`` (Fig. 3) plus its optimal placement.

    Blocks ``A_1 .. A_m`` are chained below the root ``n_0``; block
    ``A_i`` consists of a three-node spine ``n_{i,1} → n_{i,2} →
    n_{i,3}`` and the clients:

    ========== ============ =================== ==========================
    client      parent       requests            edge distance
    ========== ============ =================== ==========================
    c_{i,Δ}     n_{i,1}      Δ - 1               dmax   (pinned to block)
    c_{i,1..Δ-2} n_{i,2}     1 each              1
    c_{i,Δ-1}   n_{i,2}      mΔ                  1
    c_{i,Δ+1}   n_{i,3}      2                   1
    ========== ============ =================== ==========================

    with ``W = mΔ + Δ - 1`` and ``dmax = 4m``; all other distances are 1.

    ``single-gen`` opens ``Δ+1`` replicas per block
    (``c_{i,1..Δ-1}``, ``n_{i,3}`` by the capacity rule and ``n_{i,1}``
    by the distance rule); the optimum opens ``n_{i,1}`` per block plus
    the root: ratio ``m(Δ+1)/(m+1) → Δ+1``.

    Returns ``(instance, optimal_placement)``.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    delta_a = arity
    dmax = 4.0 * m
    W = m * delta_a + delta_a - 1

    b = TreeBuilder()
    n0 = b.add_root()
    attach = n0  # node the next block hangs from

    opt_assign: Dict[Tuple[int, int], int] = {}
    opt_replicas = [n0]

    for _i in range(1, m + 1):
        ni1 = b.add(attach, delta=1.0)
        # c_{i,Δ}: pinned to the block by an edge of length dmax.
        c_far = b.add(ni1, delta=dmax, requests=delta_a - 1)
        ni2 = b.add(ni1, delta=1.0)
        small = [
            b.add(ni2, delta=1.0, requests=1) for _ in range(delta_a - 2)
        ]
        c_big = b.add(ni2, delta=1.0, requests=m * delta_a)
        ni3 = b.add(ni2, delta=1.0)
        c_tail = b.add(ni3, delta=1.0, requests=2)

        # Optimal: n_{i,1} serves the pinned and the big client (= W),
        # the root serves the small clients and the tail client.
        opt_replicas.append(ni1)
        opt_assign[(c_far, ni1)] = delta_a - 1
        opt_assign[(c_big, ni1)] = m * delta_a
        for c in small:
            opt_assign[(c, n0)] = 1
        opt_assign[(c_tail, n0)] = 2

        attach = ni3

    tree = b.build()
    instance = ProblemInstance(
        tree,
        W,
        dmax,
        Policy.SINGLE,
        name=f"Im(m={m},arity={arity})",
    )
    optimal = Placement(opt_replicas, opt_assign)
    return instance, optimal


def single_nod_tight_instance(K: int) -> Tuple[ProblemInstance, Placement]:
    """Build the Fig. 4 family plus its optimal placement.

    ``W = K``; the root has ``K`` internal children ``n_1 .. n_K``, each
    with two clients: one demanding ``K`` (a full server) and one
    demanding 1.  ``single-nod`` packs the 1-demand client at ``n_i``
    and is then forced to open the K-demand client as its own replica
    (the ``jmin`` rule), giving ``2K`` replicas; the optimum serves the
    K-demand client at ``n_i`` and all 1-demand clients at the root,
    giving ``K+1``.  Ratio ``2K/(K+1) → 2``.

    Returns ``(instance, optimal_placement)``.
    """
    if K < 2:
        raise ValueError("K must be >= 2")
    b = TreeBuilder()
    root = b.add_root()
    opt_assign: Dict[Tuple[int, int], int] = {}
    opt_replicas = [root]
    for _ in range(K):
        ni = b.add(root, delta=1.0)
        c_full = b.add(ni, delta=1.0, requests=K)
        c_one = b.add(ni, delta=1.0, requests=1)
        opt_replicas.append(ni)
        opt_assign[(c_full, ni)] = K
        opt_assign[(c_one, root)] = 1

    tree = b.build()
    instance = ProblemInstance(
        tree, K, None, Policy.SINGLE, name=f"Fig4(K={K})"
    )
    optimal = Placement(opt_replicas, opt_assign)
    return instance, optimal
