"""Structured instance families beyond the random generators.

Deterministic parametric topologies used by the extended benchmarks and
useful to downstream users:

* :func:`full_kary` — complete k-ary tree of given depth, clients at
  the bottom: the idealised CDN shape.
* :func:`binomial` — binomial tree B_k: highly skewed degrees, the
  classic adversarial shape for divide-and-conquer assumptions.
* :func:`cdn_hierarchy` — core/metro/access/neighbourhood hierarchy
  with Zipf-skewed demand (the Section 1 service-delivery scenario).
* :func:`zipf_demands` — reusable skewed-demand sampler capped at the
  capacity.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.instance import ProblemInstance
from ..core.policies import Policy
from ..core.tree import TreeBuilder

__all__ = ["full_kary", "binomial", "cdn_hierarchy", "zipf_demands"]


def zipf_demands(
    n: int, capacity: int, *, alpha: float = 1.5, seed: int = 0
) -> np.ndarray:
    """``n`` integer demands, Zipf(alpha)-skewed, in ``[1, capacity]``."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not alpha > 1.0:
        raise ValueError("zipf exponent must be > 1")
    rng = np.random.default_rng(seed)
    raw = rng.zipf(alpha, size=n).astype(float)
    scaled = np.ceil(raw / raw.max() * capacity)
    return np.clip(scaled, 1, capacity).astype(int)


def full_kary(
    k: int,
    depth: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    delta: float = 1.0,
    request_range: tuple = (1, None),
    seed: int = 0,
) -> ProblemInstance:
    """Complete k-ary tree of internal ``depth`` levels; clients fill
    the last level (k per deepest internal node)."""
    if k < 2 or depth < 1:
        raise ValueError("need k >= 2 and depth >= 1")
    rng = np.random.default_rng(seed)
    lo, hi = request_range
    hi = capacity if hi is None else hi

    b = TreeBuilder()
    level = [b.add_root()]
    for _ in range(depth - 1):
        nxt = []
        for v in level:
            nxt.extend(b.add(v, delta=delta) for _ in range(k))
        level = nxt
    for v in level:
        for _ in range(k):
            b.add(v, delta=delta, requests=int(rng.integers(lo, hi + 1)))
    return ProblemInstance(
        b.build(), capacity, dmax, policy, name=f"kary(k={k},d={depth})"
    )


def binomial(
    order: int,
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    delta: float = 1.0,
    request_range: tuple = (1, None),
    seed: int = 0,
) -> ProblemInstance:
    """Binomial tree ``B_order`` (2^order nodes); every skeleton leaf
    receives one client.

    ``B_0`` is a single node; ``B_k`` is two linked ``B_{k-1}``.  The
    root of ``B_k`` has degree ``k`` — maximal degree skew.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    rng = np.random.default_rng(seed)
    lo, hi = request_range
    hi = capacity if hi is None else hi

    b = TreeBuilder()
    root = b.add_root()

    # The children of a B_k root are the roots of B_{k-1} ... B_0;
    # iterative so large orders do not hit the recursion limit.
    stack = [(root, order)]
    while stack:
        node, k = stack.pop()
        for i in range(k - 1, -1, -1):
            child = b.add(node, delta=delta)
            stack.append((child, i))

    # Attach a client to every childless skeleton node.
    parents = b.parents
    n_skeleton = b.n_nodes
    has_child = [False] * n_skeleton
    for v in range(1, n_skeleton):
        has_child[parents[v]] = True
    for v in range(n_skeleton):
        if not has_child[v]:
            b.add(v, delta=delta, requests=int(rng.integers(lo, hi + 1)))
    return ProblemInstance(
        b.build(), capacity, dmax, policy, name=f"binomial({order})"
    )


def cdn_hierarchy(
    metros: int = 3,
    access_per_metro: int = 4,
    hoods_per_access: int = 5,
    *,
    capacity: int = 400,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    alpha: float = 1.5,
    seed: int = 0,
) -> ProblemInstance:
    """Core → metro → access → neighbourhood hierarchy, Zipf demand.

    Edge distances: core–metro in [3,5], metro–access in [1,3],
    access–neighbourhood in [0.5,1.5] (uniform, seeded).
    """
    if min(metros, access_per_metro, hoods_per_access) < 1:
        raise ValueError("all fan-outs must be >= 1")
    rng = np.random.default_rng(seed)
    n_clients = metros * access_per_metro * hoods_per_access
    demand = zipf_demands(n_clients, capacity, alpha=alpha, seed=seed + 1)

    b = TreeBuilder()
    core = b.add_root()
    k = 0
    for _ in range(metros):
        m = b.add(core, delta=float(rng.uniform(3, 5)))
        for _ in range(access_per_metro):
            a = b.add(m, delta=float(rng.uniform(1, 3)))
            for _ in range(hoods_per_access):
                b.add(
                    a,
                    delta=float(rng.uniform(0.5, 1.5)),
                    requests=int(demand[k]),
                )
                k += 1
    return ProblemInstance(
        b.build(), capacity, dmax, policy,
        name=f"cdn({metros}x{access_per_metro}x{hoods_per_access})",
    )
