"""Instance and placement serialization.

JSON round-trip for :class:`~repro.core.instance.ProblemInstance` and
:class:`~repro.core.placement.Placement`, plus Graphviz DOT export for
papers/debugging.  The JSON schema is versioned and intentionally plain
(lists of ints/floats) so instances can be produced by other tools.
"""

from __future__ import annotations

import json
import math
from typing import Optional

from ..core.errors import InvalidInstanceError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..core.tree import NO_PARENT, Tree

__all__ = [
    "canonical_json",
    "instance_to_dict",
    "instance_from_dict",
    "dump_instance",
    "load_instance",
    "placement_to_dict",
    "placement_from_dict",
    "to_dot",
]

SCHEMA_VERSION = 1


def canonical_json(data: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace).

    Two structurally equal payloads always encode to the same string,
    which makes the output suitable for content-addressing — the service
    layer fingerprints instances by hashing exactly this encoding.
    """
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def instance_to_dict(instance: ProblemInstance) -> dict:
    """Plain-JSON representation of an instance."""
    t = instance.tree
    return {
        "schema": SCHEMA_VERSION,
        "name": instance.name,
        "parents": [t.parent(v) for v in range(len(t))],
        "deltas": [
            None if math.isinf(t.delta(v)) else t.delta(v) for v in range(len(t))
        ],
        "requests": [t.requests(v) for v in range(len(t))],
        "capacity": instance.capacity,
        "dmax": instance.dmax,
        "policy": str(instance.policy),
    }


def instance_from_dict(data: dict) -> ProblemInstance:
    """Inverse of :func:`instance_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise InvalidInstanceError(
            f"unsupported schema version {data.get('schema')!r}"
        )
    deltas = [math.inf if d is None else float(d) for d in data["deltas"]]
    tree = Tree(data["parents"], deltas, data["requests"])
    return ProblemInstance(
        tree,
        int(data["capacity"]),
        data["dmax"],
        Policy(data["policy"]),
        name=data.get("name", ""),
    )


def dump_instance(instance: ProblemInstance, path: str) -> None:
    """Write the instance to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(instance_to_dict(instance), fh, indent=2)


def load_instance(path: str) -> ProblemInstance:
    """Read an instance from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return instance_from_dict(json.load(fh))


def placement_to_dict(placement: Placement) -> dict:
    """Plain-JSON representation of a placement."""
    return {
        "schema": SCHEMA_VERSION,
        "replicas": sorted(placement.replicas),
        "assignments": [
            [a.client, a.server, a.amount] for a in placement.iter_assignments()
        ],
    }


def placement_from_dict(data: dict) -> Placement:
    """Inverse of :func:`placement_to_dict`."""
    assignments = {(c, s): a for (c, s, a) in data["assignments"]}
    return Placement(data["replicas"], assignments)


def to_dot(
    instance: ProblemInstance, placement: Optional[Placement] = None
) -> str:
    """Graphviz DOT rendering of the tree (replicas doubled-circled)."""
    t = instance.tree
    replicas = placement.replicas if placement is not None else frozenset()
    lines = ["digraph replica_tree {", "  rankdir=TB;"]
    for v in range(len(t)):
        if t.is_leaf(v):
            label = f"c{v}\\nr={t.requests(v)}"
            shape = "box"
        else:
            label = f"n{v}"
            shape = "ellipse"
        peripheries = 2 if v in replicas else 1
        lines.append(
            f'  {v} [label="{label}", shape={shape}, peripheries={peripheries}];'
        )
    for v in range(1, len(t)):
        lines.append(f'  {t.parent(v)} -> {v} [label="{t.delta(v):g}"];')
    lines.append("}")
    return "\n".join(lines)
