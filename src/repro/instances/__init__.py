"""Instance construction: generators, tight families, serialization."""

from .ascii import render_placement_summary, render_tree
from .families import binomial, cdn_hierarchy, full_kary, zipf_demands
from .generators import (
    GENERATORS,
    broom,
    caterpillar,
    make_instance,
    random_binary_tree,
    random_tree,
    star,
)
from .mesh import build_isp_mesh, isp_mesh
from .io import (
    dump_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    placement_from_dict,
    placement_to_dict,
    to_dot,
)
from .tight import single_gen_tight_instance, single_nod_tight_instance

__all__ = [
    "random_tree",
    "random_binary_tree",
    "caterpillar",
    "broom",
    "star",
    "GENERATORS",
    "make_instance",
    "build_isp_mesh",
    "isp_mesh",
    "full_kary",
    "binomial",
    "cdn_hierarchy",
    "zipf_demands",
    "single_gen_tight_instance",
    "single_nod_tight_instance",
    "instance_to_dict",
    "instance_from_dict",
    "dump_instance",
    "load_instance",
    "placement_to_dict",
    "placement_from_dict",
    "to_dot",
    "render_tree",
    "render_placement_summary",
]
