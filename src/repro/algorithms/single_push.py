"""The paper's future-work direction: pushing servers toward the root.

Section 5 conjectures a 3/2-approximation for Single-NoD-Bin exists and
suggests "to push servers towards the root of the tree, whenever
possible" instead of a one-pass greedy.  This module implements that
direction as composable pieces so the benchmark harness can measure how
far it gets:

* :func:`single_nod_bestfit` — Algorithm 2 with the *packing rule*
  swapped: at an overflow node the replica is packed best-fit-decreasing
  (largest entries first, maximising the packed volume) instead of the
  paper's smallest-first rule.  An ablation knob: the paper's choice of
  smallest-first is what its |R1|=|R2| pairing argument needs, but it
  deliberately wastes capacity (Fig. 4!), so comparing the two isolates
  the cost of proof-friendliness.
* :func:`single_push` — ``single_nod`` followed by the local-search
  root-pushing pass (:func:`~repro.algorithms.local_search.improve_single`),
  i.e. the paper's sketched recipe.  Benchmark E11 measures its observed
  ratio against exact optima on Single-NoD-Bin instances and checks the
  conjectured 3/2 envelope empirically.

Both return checker-valid placements; neither carries a proven ratio —
they are measured, not claimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import InfeasibleInstanceError, PolicyError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver
from .local_search import improve_single
from .single_nod import single_nod

__all__ = ["single_nod_bestfit", "single_push"]


@dataclass
class _Entry:
    node: int
    demand: int
    bundle: List[Tuple[int, int]] = field(default_factory=list)


@register_solver(
    "single-nod-bestfit",
    policy=Policy.SINGLE,
    needs_nod=True,
    description="Algorithm 2 with best-fit-decreasing overflow packing",
)
def single_nod_bestfit(instance: ProblemInstance) -> Placement:
    """Algorithm 2 with best-fit-decreasing packing at overflow nodes.

    Identical control flow to :func:`~repro.algorithms.single_nod` —
    aggregation (Property 1), entry re-parenting, root fallback — but an
    overflow replica greedily absorbs the largest entries that still
    fit, and the overflow companion replica (the paper's ``jmin``) opens
    only when some entry remains that the node cannot take.
    """
    if instance.has_distance_constraint:
        raise PolicyError(
            "single_nod_bestfit only solves the NoD variants"
        )
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}"
        )

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}

    def open_replica(at: int, entries: List[_Entry]) -> None:
        replicas.append(at)
        for e in entries:
            for client, amount in e.bundle:
                assignments[(client, at)] = (
                    assignments.get((client, at), 0) + amount
                )

    n = len(tree)
    root = tree.root
    inbox: List[List[_Entry]] = [[] for _ in range(n)]
    aggregate: List[_Entry] = [None] * n  # type: ignore[list-item]

    for j in tree.postorder():
        if tree.is_leaf(j):
            r = tree.requests(j)
            if j == root:
                if r > 0:
                    open_replica(j, [_Entry(j, r, [(j, r)])])
                continue
            aggregate[j] = _Entry(j, r, [(j, r)]) if r > 0 else None
            continue

        entries: List[_Entry] = list(inbox[j])
        for jp in tree.children(j):
            agg = aggregate[jp]
            if agg is not None and agg.demand > 0:
                entries.append(agg)
        total = sum(e.demand for e in entries)

        if total > W:
            # Best-fit-decreasing: largest first while it fits.
            entries.sort(key=lambda e: -e.demand)
            packed: List[_Entry] = []
            leftovers: List[_Entry] = []
            acc = 0
            for e in entries:
                if acc + e.demand <= W:
                    packed.append(e)
                    acc += e.demand
                else:
                    leftovers.append(e)
            open_replica(j, packed)
            if j != root:
                inbox[tree.parent(j)].extend(leftovers)
            else:
                for e in leftovers:
                    open_replica(e.node, [e])
            aggregate[j] = None
        else:
            if j == root:
                if total > 0:
                    merged = _Entry(j, total, [])
                    for e in entries:
                        merged.bundle.extend(e.bundle)
                    open_replica(root, [merged])
            elif total > 0:
                merged = _Entry(j, total, [])
                for e in entries:
                    merged.bundle.extend(e.bundle)
                aggregate[j] = merged
            else:
                aggregate[j] = None

    return Placement(replicas, assignments)


@register_solver(
    "single-push",
    policy=Policy.SINGLE,
    needs_nod=True,
    stats_kwarg="stats",
    description="single-nod + close/merge local search (measured 3/2)",
)
def single_push(
    instance: ProblemInstance, stats: Optional[Dict[str, int]] = None
) -> Placement:
    """The paper's sketched 3/2 direction: greedy pass + root pushing.

    Runs :func:`single_nod`, then the close/merge local search, which
    relocates mergeable replicas toward common ancestors.  Measured (not
    proven) to stay within 3/2 of the optimum on the E11 sweep.
    """
    return improve_single(instance, single_nod(instance), stats=stats)
