"""Algorithm 1 of the paper: ``single-gen``.

A greedy bottom-up (Δ+1)-approximation for the **Single** problem with
distance constraints (Theorem 3), which degrades gracefully to a
Δ-approximation when no distance constraint is present (Corollary 1).

The recursion invariant: ``single-gen(j)`` returns a pair
``(req, dist)`` where ``req ≤ W`` is the amount of requests still to be
served at ``j`` or above, and ``dist`` is the remaining distance budget —
those requests must be served within ``dist`` of ``j``.  Three placement
rules fire while returning up the tree:

1. *Distance rule* — if the requests below child ``j'`` cannot cross the
   edge to ``j`` (``δ_{j'} > dist_{j'}``), a replica is opened at ``j'``.
2. *Capacity rule* — if the children of ``j`` forward more than ``W``
   requests in total, a replica is opened at every child still holding
   requests, and nothing goes further up.
3. *Root rule* — leftover requests at the root are served by a replica
   at the root.

The implementation additionally threads through each node the *bundle* of
``(client, amount)`` pairs its pending requests consist of, so a complete
:class:`~repro.core.placement.Placement` (not just a replica count) is
produced and can be validated independently.  Under the Single policy a
bundle always contains whole clients — the algorithm never splits a
client's demand.

Complexity: ``O(Δ · |T|)`` as proven in the paper (every node is visited
once and does O(arity) work, plus bundle concatenations that amortise to
the number of client-to-server handoffs).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.errors import InfeasibleInstanceError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["single_gen"]


@register_solver(
    "single-gen",
    policy=Policy.SINGLE,
    description="Algorithm 1: (Δ+1)-approximation, any arity, with dmax",
)
def single_gen(instance: ProblemInstance) -> Placement:
    """Run Algorithm 1 on ``instance`` and return a full placement.

    Works for any tree arity, with or without a distance constraint.
    Guarantees ``|R| ≤ (Δ+1) · |R_opt|`` (Δ·|R_opt| without distance
    constraints).  Raises :class:`InfeasibleInstanceError` if some client
    exceeds the server capacity (then no Single placement exists).
    """
    tree = instance.tree
    W = instance.capacity
    dmax = math.inf if instance.dmax is None else float(instance.dmax)

    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}; "
            "no Single placement exists"
        )

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}

    # Per-node pending state, filled in postorder:
    #   req[v]    — requests still to serve at or above v
    #   dist[v]   — remaining distance budget for those requests
    #   bundle[v] — the (client, amount) composition of req[v]
    n = len(tree)
    req: List[int] = [0] * n
    dist: List[float] = [0.0] * n
    bundle: List[List[Tuple[int, int]]] = [[] for _ in range(n)]

    def open_replica(at: int, served: List[Tuple[int, int]]) -> None:
        replicas.append(at)
        for client, amount in served:
            assignments[(client, at)] = assignments.get((client, at), 0) + amount

    root = tree.root
    for j in tree.postorder():
        if tree.is_leaf(j):
            if j == root:
                # Degenerate single-node tree: serve locally if needed.
                if tree.requests(j) > 0:
                    open_replica(j, [(j, tree.requests(j))])
                continue
            req[j] = tree.requests(j)
            dist[j] = dmax
            bundle[j] = [(j, tree.requests(j))] if tree.requests(j) else []
            continue

        # Step 1: distance rule on each child.
        for jp in tree.children(j):
            if tree.delta(jp) > dist[jp] and req[jp] > 0:
                open_replica(jp, bundle[jp])
                req[jp] = 0
                dist[jp] = dmax
                bundle[jp] = []
            else:
                dist[jp] = dist[jp] - tree.delta(jp)

        total = sum(req[jp] for jp in tree.children(j))

        if total > W:
            # Step 2: capacity rule — serve each child's pending locally.
            for jp in tree.children(j):
                if req[jp] > 0:
                    open_replica(jp, bundle[jp])
                    req[jp] = 0
                    bundle[jp] = []
            req[j] = 0
            dist[j] = dmax
            bundle[j] = []
        elif j == root:
            # Step 3a: root rule.
            if total > 0:
                merged: List[Tuple[int, int]] = []
                for jp in tree.children(j):
                    merged.extend(bundle[jp])
                    bundle[jp] = []
                open_replica(root, merged)
            req[j] = 0
            dist[j] = dmax
        else:
            # Step 3b: forward pending requests upward.
            merged = []
            for jp in tree.children(j):
                merged.extend(bundle[jp])
                bundle[jp] = []
            req[j] = total
            # Children that forward no requests do not constrain the
            # budget (the paper resets served children to dmax; we also
            # ignore zero-demand branches, whose budget is meaningless).
            dist[j] = min(
                (dist[jp] for jp in tree.children(j) if req[jp] > 0),
                default=dmax,
            )
            bundle[j] = merged

    return Placement(replicas, assignments)
