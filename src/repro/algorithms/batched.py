"""Batched Multiple-NoD solves: one array program over many instances.

``solve_many`` answers a list of instances with exactly the placements
``[multiple_nod_dp(x) for x in instances]`` would produce, but runs the
dynamic program of same-*shape* instances as **one NumPy array
program**.  Two instances share a shape bucket when their compiled
:class:`~repro.core.arrays.FlatTree` topologies (parent / child-chain
arrays) and server capacity ``W`` coincide — the situation of every
demand sweep, scenario replay and service burst, where one tree is
re-solved under many request vectors.

Threshold form
--------------
Every DP table is a non-increasing integer step function, so instead of
the dense ``g_v(u)`` tables the batch carries **threshold matrices**
``T[b, v] = min{u : g(u) ≤ v}`` (``SENTINEL`` = unreachable): the value
axis is tiny (replica counts), and per tree node the whole batch folds
with :func:`repro.core.kernels.batch_min_plus_t` (a short min-plus over
the value axis) and :func:`repro.core.kernels.batch_absorb_t` (three
array ops).  Placements are reconstructed per instance from the stored
intermediate pool thresholds by rules that provably settle every argmin
tie exactly like the dense kernels — so the result is **bit-identical**
to the sequential solver (property-tested in
``tests/test_kernel_conformance.py``).

Instances that cannot batch — distance-constrained, non-Multiple,
singleton buckets, or NumPy unavailable — fall back to
:func:`~repro.algorithms.multiple_nod_dp.multiple_nod_dp` one by one,
with identical results and identical exceptions.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.arrays import flat_tree
from ..core.errors import PolicyError
from ..core.instance import ProblemInstance
from ..core.kernels import HAVE_NUMPY, SENTINEL, np
from ..core.placement import Placement
from ..core.policies import Policy
from .multiple_nod_dp import multiple_nod_dp

__all__ = ["solve_many", "MIN_BATCH"]

#: Buckets smaller than this solve per-instance — below it the array
#: program's fixed per-batch cost outweighs the amortisation.
MIN_BATCH = int(os.environ.get("REPRO_BATCH_MIN", "2"))


def _bucket_key(instance: ProblemInstance) -> Tuple:
    """Shape key: instances with equal keys stack into one array program.

    The FlatTree child chains pin the topology *and* the child order —
    convolution order and hence every tie-break depend on it.
    """
    ft = flat_tree(instance.tree)
    return (
        instance.capacity,
        tuple(ft.parent),
        tuple(ft.first_child),
        tuple(ft.next_sibling),
    )


def _delegate(inst: ProblemInstance, return_exceptions: bool):
    """One sequential solve; optionally materialise the raise."""
    if not return_exceptions:
        return multiple_nod_dp(inst)
    try:
        return multiple_nod_dp(inst)
    except Exception as exc:  # noqa: BLE001 — caller maps per instance
        return exc


def solve_many(
    instances: Sequence[ProblemInstance],
    *,
    return_exceptions: bool = False,
) -> List[Placement]:
    """Solve every instance, batching same-shape Multiple-NoD solves.

    Parameters
    ----------
    instances:
        Any mix of instances.  Multiple-policy instances without a
        distance constraint are grouped by shape and solved as array
        programs; everything else is delegated to
        :func:`multiple_nod_dp` per instance (which raises the same
        exceptions a sequential loop would).
    return_exceptions:
        When True, a per-instance failure (infeasibility in
        particular) becomes the raised exception *object* at that
        instance's position instead of aborting the whole batch —
        the service façade and the sweep runner map each outcome to
        its own status.

    Returns
    -------
    list[Placement]
        ``[multiple_nod_dp(x) for x in instances]``, bit-identically,
        in input order (exceptions interleaved when
        ``return_exceptions``).
    """
    results: List[Optional[Placement]] = [None] * len(instances)
    if not HAVE_NUMPY:
        return [_delegate(inst, return_exceptions) for inst in instances]

    buckets: Dict[Tuple, List[int]] = {}
    for idx, inst in enumerate(instances):
        if inst.policy is not Policy.MULTIPLE or inst.has_distance_constraint:
            results[idx] = _delegate(inst, return_exceptions)
            continue
        buckets.setdefault(_bucket_key(inst), []).append(idx)

    for idxs in buckets.values():
        if len(idxs) < MIN_BATCH:
            for i in idxs:
                results[i] = _delegate(instances[i], return_exceptions)
        else:
            for i, placement in zip(
                idxs,
                _solve_bucket([instances[i] for i in idxs], return_exceptions),
            ):
                results[i] = placement
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# One shape bucket = one array program.
# ----------------------------------------------------------------------


def _solve_bucket(
    insts: List[ProblemInstance], return_exceptions: bool = False
) -> List[Placement]:
    from ..core.kernels import (
        batch_absorb_t,
        batch_leaf_thresholds,
        batch_min_plus_t,
    )

    B = len(insts)
    ft0 = flat_tree(insts[0].tree)
    W = insts[0].capacity
    n = ft0.n
    root = ft0.root
    depth = ft0.depth
    first_child = ft0.first_child
    next_sibling = ft0.next_sibling
    post_to_orig = ft0.post_to_orig

    fts = [flat_tree(inst.tree) for inst in insts]
    demand = np.array([ft.demand for ft in fts], dtype=np.int32)
    sdem = np.array([ft.subtree_demand for ft in fts], dtype=np.int32)

    # Forward pass: per post position, the whole batch at once.  For the
    # unwind we keep every node's threshold row plus, per internal node,
    # the pool row *before* each child's convolution and the final
    # (pre-absorb) pool.
    t_rows: List = [None] * n
    t_lens: List = [None] * n
    conv_store: List[Optional[List[Tuple[int, object, object]]]] = [None] * n
    pool_final: List = [None] * n

    for p in range(n):
        u_cap = np.minimum(sdem[:, p], W * depth[p])
        if first_child[p] < 0:
            t_rows[p] = batch_leaf_thresholds(demand[:, p], u_cap, W)
            t_lens[p] = (u_cap + 1).astype(np.int64)
            continue
        pool_cap = np.minimum(sdem[:, p], W * (depth[p] + 1))
        pool = np.zeros((B, 1), dtype=np.int32)
        plen = np.ones(B, dtype=np.int64)
        store: List[Tuple[int, object, object]] = []
        c = first_child[p]
        while c >= 0:
            store.append((c, pool, plen))
            pool, plen = batch_min_plus_t(
                t_rows[c], t_lens[c], pool, plen, pool_cap
            )
            c = next_sibling[c]
        conv_store[p] = store
        pool_final[p] = (pool, plen)
        t_rows[p], t_lens[p] = batch_absorb_t(pool, plen, u_cap, W)

    # Per-instance unwind + flow routing, as in the sequential solver.
    placements: List[Placement] = []
    from .feasibility import multiple_assignment

    for i, inst in enumerate(insts):
        if _value_at(t_rows[root][i].tolist(), int(t_lens[root][i]), 0) is None:
            # Root unreachable: delegate for the identical diagnostic.
            placements.append(_delegate(inst, return_exceptions))
            continue
        replicas = _reconstruct(
            i,
            W,
            n,
            root,
            first_child,
            post_to_orig,
            demand,
            t_rows,
            t_lens,
            conv_store,
            pool_final,
        )
        assign = multiple_assignment(inst, replicas)
        if assign is None:  # pragma: no cover - contradicts DP feasibility
            raise PolicyError("DP replica set failed flow verification")
        used = set(replicas)
        for (_c, s) in assign:
            used.add(s)
        placements.append(Placement(used, dict(assign)))
    return placements


# ----------------------------------------------------------------------
# Threshold-form reconstruction — dense argmins recovered exactly.
# ----------------------------------------------------------------------


def _value_at(row: List[int], length: int, u: int) -> Optional[int]:
    """Dense table value at ``u`` from a threshold row (None = ``inf``).

    ``row`` is non-increasing, so the value is the first ``v`` with
    ``row[v] ≤ u`` (binary search).
    """
    if u >= length:
        return None
    lo, hi = 0, len(row)
    while lo < hi:
        mid = (lo + hi) // 2
        if row[mid] <= u:
            hi = mid
        else:
            lo = mid + 1
    return lo if lo < len(row) else None


def _absorb_arg(pool, vp: int, lp: int, u: int, W: int) -> int:
    """The dense absorb argmin at ``u``, read off pool thresholds.

    The window minimum of a non-increasing pool sits at the right edge
    ``redge``; the dense kernel picks that edge's level start clamped
    into the window, iff absorbing beats the pool — identical here with
    the level start read as ``T_pool[value(redge)]``.  The beats-test
    needs no exact pool value at ``u``: ``pool(u) > pv + 1`` iff the
    threshold for value ``pv + 1`` lies past ``u``.
    """
    redge = u + W
    if redge > lp - 1:
        redge = lp - 1
    if redge < u + 1:
        return -1
    pv = _value_at(pool, lp, redge)
    if pv is None:
        return -1
    w = pv + 1
    if w > vp - 1:
        w = vp - 1  # the top column covers every larger value
    if pool[w] <= u:
        return -1
    s = pool[pv]
    return s if s > u else u + 1


def _conv_arg(ta, len_a: int, tb, vb: int, len_b: int, U: int, out_val: int):
    """The dense convolution argmin at ``U``, read off thresholds.

    The dense kernel scans the levels of ``a`` by ascending start —
    i.e. by *descending* value — writing on strict ``<``, so the winner
    is the highest ``a``-value level achieving ``out_val``; within a
    level the split is its start ``j0`` while ``b`` reaches, else the
    clamped ``U − (len_b − 1)``.  Values above ``out_val`` cannot match
    (``b`` is non-negative), so the scan starts at ``out_val``.  The
    match test ``b(k) == out_val − v`` is two O(1) threshold probes:
    ``T_b[out_val − v] ≤ k`` and (unless 0) ``T_b[out_val − v − 1] > k``.
    """
    b_last = len_b - 1
    la1 = len_a - 1
    for v in range(min(len(ta) - 1, out_val), -1, -1):
        j0 = ta[v]
        if j0 > U or j0 > la1:
            continue
        if v >= 1 and ta[v - 1] == j0:
            continue  # value v not present in a
        j1 = ta[v - 1] - 1 if v >= 1 else la1
        if j1 > la1:
            j1 = la1
        if U - j0 <= b_last:
            j = j0
        elif U - b_last <= j1:
            j = U - b_last
        else:
            continue
        bv = out_val - v
        if bv > vb - 1:
            continue
        k = U - j
        if tb[bv] <= k and (bv == 0 or tb[bv - 1] > k):
            return int(j)
    return None


def _reconstruct(
    i: int,
    W: int,
    n: int,
    root: int,
    first_child: Sequence[int],
    post_to_orig: Sequence[int],
    demand,
    t_rows,
    t_lens,
    conv_store,
    pool_final,
) -> List[int]:
    """Replica set of instance ``i`` — the dense walk over thresholds."""
    forward = [0] * n
    stack = [root]
    replicas: List[int] = []
    demand_i = demand[i]
    while stack:
        p = stack.pop()
        u = forward[p]
        if first_child[p] < 0:
            if u < demand_i[p]:
                replicas.append(post_to_orig[p])
            continue
        prow_m, plen_v = pool_final[p]
        prow = prow_m[i].tolist()
        pl = int(plen_v[i])
        U = u
        src = _absorb_arg(prow, len(prow), pl, u, W)
        if src >= 0:
            replicas.append(post_to_orig[p])
            U = src
        remaining = U
        out_val = _value_at(prow, pl, remaining)
        for (child, ppool, pplen) in reversed(conv_store[p]):
            ta = t_rows[child][i].tolist()
            la = int(t_lens[child][i])
            tb = ppool[i].tolist()
            lb = int(pplen[i])
            assert out_val is not None
            j = _conv_arg(ta, la, tb, len(tb), lb, remaining, out_val)
            assert j is not None and j >= 0
            forward[child] = j
            remaining -= j
            stack.append(child)
            out_val = _value_at(tb, lb, remaining)
        assert remaining == 0
    return replicas
