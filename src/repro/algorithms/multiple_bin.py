"""Algorithm 3 of the paper: ``multiple-bin``.

A polynomial-time **optimal** algorithm for **Multiple-Bin** — the
Multiple policy on binary trees with distance constraints — valid
whenever every client fits a server (``r_i ≤ W``, Theorem 6).  When some
``r_i > W`` the problem is NP-hard (Theorem 5), and this module refuses
to run.

Data structures (Section 4.2):

* ``req(j)`` — triples ``(d, w, i)``: ``w`` requests of client ``i``,
  already at distance ``d`` from ``j``, still looking for a server at
  ``j`` or above.  Sorted by non-increasing ``d`` (most distance-starved
  first) and totalling at most ``W``.
* ``proc(j)`` — the triples a replica at ``j`` processes.

Per internal node ``j``, the children's ``req`` lists are shifted by the
edge distances (``add-dist``) and merged (``merge``).  A replica opens at
``j`` when the merged head can no longer travel upward
(``d + δ_j > dmax``) or more than ``W`` requests are pending; it absorbs
the most-constrained prefix, splitting one triple exactly at capacity —
this is where the Multiple policy earns its strength.  If the *remainder*
still cannot travel upward, the ``extra-server`` procedure performs the
paper's reassignment: ``j`` now processes all of its left child's
pending list, the right child's pending list is pushed down the rightmost
path, and the first right-spine node without a replica receives one.

The implementation keeps per-node ``proc`` lists mutable until the end
(``extra-server`` *replaces* earlier decisions) and only then freezes the
final :class:`~repro.core.placement.Placement`.

Complexity: ``O(|T|²)`` as in the paper — each node's lists hold at most
one triple per client, and ``extra-server`` visits any node at most once.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.errors import (
    InvalidInstanceError,
    NotBinaryTreeError,
    SolverError,
)
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["multiple_bin"]

# A triple (d, w, i): w requests of client i, at distance d from the
# node whose list holds the triple.
_Triple = Tuple[float, int, int]


def _merge(a: List[_Triple], b: List[_Triple]) -> List[_Triple]:
    """Merge two lists sorted by non-increasing distance."""
    out: List[_Triple] = []
    ia = ib = 0
    while ia < len(a) and ib < len(b):
        if a[ia][0] >= b[ib][0]:
            out.append(a[ia])
            ia += 1
        else:
            out.append(b[ib])
            ib += 1
    out.extend(a[ia:])
    out.extend(b[ib:])
    return out


def _add_dist(lst: List[_Triple], dist: float) -> List[_Triple]:
    """Shift all triple distances by ``dist`` (crossing one edge up)."""
    return [(d + dist, w, i) for (d, w, i) in lst]


@register_solver(
    "multiple-bin",
    policy=Policy.MULTIPLE,
    binary_only=True,
    exact=True,
    description="Algorithm 3: optimal on binary trees when r_i <= W",
)
def multiple_bin(instance: ProblemInstance) -> Placement:
    """Run Algorithm 3 on ``instance`` and return an optimal placement.

    Requirements:

    * the tree is binary (arity ≤ 2) — :class:`NotBinaryTreeError`;
    * every client fits one server (``r_i ≤ W``) —
      :class:`InvalidInstanceError` (beyond that bound the problem is
      NP-hard, Theorem 5).

    The distance constraint may be absent (``dmax=None``); the algorithm
    then opens replicas on capacity overflow only and remains valid.
    """
    tree = instance.tree
    if not tree.is_binary:
        raise NotBinaryTreeError(
            f"multiple-bin requires a binary tree, got arity {tree.arity}"
        )
    W = instance.capacity
    if tree.max_request > W:
        raise InvalidInstanceError(
            f"multiple-bin requires r_i <= W for all clients "
            f"(max r_i = {tree.max_request}, W = {W}); the unrestricted "
            "problem is NP-hard (Theorem 5)"
        )
    dmax = math.inf if instance.dmax is None else float(instance.dmax)

    n = len(tree)
    root = tree.root
    in_R: List[bool] = [False] * n
    req: List[List[_Triple]] = [[] for _ in range(n)]
    proc: List[List[_Triple]] = [[] for _ in range(n)]

    def extra_server(j: int) -> None:
        """Paper's ``extra-server``: reassign and descend the right spine.

        Precondition: ``j`` holds a replica, has two children, and its
        pending list cannot travel above ``j``.  Postcondition: all
        requests pending in ``subtree(j)`` are served inside it, with
        exactly one new replica opened.
        """
        node = j
        while True:
            kids = tree.children(node)
            if len(kids) != 2:  # pragma: no cover - excluded by Thm 6 proof
                raise SolverError(
                    f"extra-server reached node {node} with {len(kids)} "
                    "children; this contradicts the capacity invariant"
                )
            lc, rc = kids[0], kids[1]
            # ``node`` now processes everything its left child forwarded.
            proc[node] = _add_dist(req[lc], tree.delta(lc))
            if not in_R[rc]:
                in_R[rc] = True
                proc[rc] = list(req[rc])
                return
            if tree.is_leaf(rc):  # pragma: no cover - excluded by Thm 6 proof
                raise SolverError(
                    f"extra-server reached leaf {rc} already holding a "
                    "replica; this contradicts req(rc) = empty"
                )
            node = rc

    for j in tree.postorder():
        if tree.is_leaf(j):
            r = tree.requests(j)
            if r == 0:
                continue
            if j == root or tree.delta(j) > dmax:
                # The requests can never reach the parent: serve locally.
                in_R[j] = True
                proc[j] = [(0.0, r, j)]
            else:
                req[j] = [(0.0, r, j)]
            continue

        kids = tree.children(j)
        temp: List[_Triple] = []
        for child in kids:
            temp = _merge(temp, _add_dist(req[child], tree.delta(child)))
        if not temp:
            continue
        wtot = sum(w for (_d, w, _i) in temp)
        is_root = j == root

        must_serve_here = is_root or temp[0][0] + tree.delta(j) > dmax
        if must_serve_here or wtot > W:
            in_R[j] = True
            # Absorb the most-constrained prefix, splitting at capacity.
            absorbed: List[_Triple] = []
            wproc = 0
            k = 0
            while k < len(temp) and wproc < W:
                d, w, i = temp[k]
                if wproc + w <= W:
                    absorbed.append((d, w, i))
                    wproc += w
                    k += 1
                else:
                    take = W - wproc
                    absorbed.append((d, take, i))
                    temp[k] = (d, w - take, i)
                    wproc = W
            proc[j] = absorbed
            temp = temp[k:]

        req[j] = temp
        if req[j]:
            head_d = req[j][0][0]
            if is_root or head_d + tree.delta(j) > dmax:
                # Capacity at j is exhausted but the remainder cannot go
                # up: open one extra replica inside the subtree.
                extra_server(j)
                req[j] = []

    # Freeze the proc lists into a placement.
    replicas = [v for v in range(n) if in_R[v]]
    assignments: Dict[Tuple[int, int], int] = {}
    for v in replicas:
        for (_d, w, i) in proc[v]:
            if w > 0:
                assignments[(i, v)] = assignments.get((i, v), 0) + w
    return Placement(replicas, assignments)
