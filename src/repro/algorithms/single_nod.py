"""Algorithm 2 of the paper: ``single-nod``, on the flat-array substrate.

A greedy bottom-up 2-approximation for **Single-NoD** — the Single
policy with no distance constraint (Theorem 4).

The algorithm refines ``single-gen`` by exploiting the absence of
distances.  It works on *entries*: a subtree whose total pending demand
fits a server is aggregated into a single entry ``(node, demand)``
(Property 1 of the paper) and treated like a client higher up.  At a node
``j`` whose entries sum to more than ``W``:

* a replica is opened at ``j`` and greedily packed with the *smallest*
  entries (whole entries — Single policy — sorted non-decreasing);
* the first entry that does not fit (``jmin`` in the paper) gets its own
  replica, placed at the entry's node;
* surviving entries are re-parented: they become entries of
  ``parent(j)`` and may be packed there or higher.

Leftover entries reaching the root either fit one last root replica or
each get their own replica (the paper's set ``R₃``).

The proof pairs each packed replica with its ``jmin`` replica
(``|R₁| = |R₂|``) and shows any solution needs ``|R₁| + |R₃|`` replicas,
hence the factor 2, which is tight (Fig. 4, reproduced in
:func:`repro.instances.tight.single_nod_tight_instance`).

Data layout
-----------
The fold runs over the :class:`~repro.core.arrays.FlatTree` post-order:
``for p in range(n)`` with ``demand`` array lookups and
``first_child`` / ``next_sibling`` child chains — no per-node method
calls or tuple allocation.  Each subtree's result is summarised by its
*export* (the aggregate entry, or the leftover entries of a packing),
exactly like the memoized incremental fold in
:mod:`repro.dynamic.incremental`.

Invariants
----------
Bit-identical to the original object-graph formulation (preserved as
:func:`repro.algorithms.reference.single_nod_reference`): entry lists
are assembled in the original's inbox order — children's leftovers in
*reversed* child order, then aggregates in child order — and the
packing sort is stable, so every tie breaks the same way and the
returned placement is exactly equal.  Property-tested in
``tests/test_arrays.py``.

Complexity: ``O((Δ log Δ + |C|) · |T|)`` — we sort entry lists per node;
entry bundles are concatenated by reference so total bookkeeping stays
linear in the number of client-to-server handoffs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arrays import flat_tree
from ..core.errors import InfeasibleInstanceError, PolicyError
from ..core.instance import ProblemInstance
from ..core.kernels import prefix_fit, stable_argsort
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["single_nod"]

#: An entry: ``(node, demand, bundle)`` — a pending group of whole
#: clients rooted at ``node`` (an original tree id).  ``demand ≤ W``
#: always holds; ``bundle`` lists the (client, amount) pairs the entry
#: is made of.  An entry is served atomically, so the Single policy is
#: respected by construction.
_Entry = Tuple[int, int, List[Tuple[int, int]]]


@register_solver(
    "single-nod",
    policy=Policy.SINGLE,
    needs_nod=True,
    description="Algorithm 2: 2-approximation for Single-NoD",
)
def single_nod(instance: ProblemInstance) -> Placement:
    """Run Algorithm 2 on ``instance`` and return a full placement.

    Parameters
    ----------
    instance:
        A Single-policy instance without distance constraint (the *NoD*
        variants) — the entry re-parenting step may move requests
        arbitrarily far up the tree.

    Returns
    -------
    Placement
        A checker-valid placement with ``|R| ≤ 2·|R_opt|``;
        bit-identical to the object-graph baseline
        :func:`repro.algorithms.reference.single_nod_reference`.

    Raises
    ------
    PolicyError
        If the instance carries a distance constraint.
    InfeasibleInstanceError
        If some client demands more than ``W`` (no Single placement
        exists at all).
    """
    if instance.has_distance_constraint:
        raise PolicyError(
            "single-nod only solves the NoD variants; use single_gen for "
            "instances with a distance constraint"
        )
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}; "
            "no Single placement exists"
        )

    ft = flat_tree(tree)
    n = ft.n
    root = ft.root
    demand = ft.demand
    first_child = ft.first_child
    next_sibling = ft.next_sibling
    post_to_orig = ft.post_to_orig

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}

    def open_replica(at: int, entries: List[_Entry]) -> None:
        replicas.append(at)
        for (_node, _dem, bundle) in entries:
            for client, amount in bundle:
                assignments[(client, at)] = (
                    assignments.get((client, at), 0) + amount
                )

    # export[p]: what subtree(p) pushes to its parent — ("agg", [entry])
    # for an aggregated subtree, ("left", entries) for the leftovers of
    # a packing at p, or None.
    export: List[Optional[Tuple[str, List[_Entry]]]] = [None] * n

    for j in range(n):
        v = post_to_orig[j]
        if first_child[j] < 0:
            r = demand[j]
            if j == root:
                if r > 0:
                    open_replica(v, [(v, r, [(v, r)])])
                continue
            export[j] = ("agg", [(v, r, [(v, r)])]) if r > 0 else None
            continue

        # The original's inbox order: leftovers child-by-child in
        # *reversed* child order, then aggregates in child order.
        entries: List[_Entry] = []
        children: List[int] = []
        c = first_child[j]
        while c >= 0:
            children.append(c)
            c = next_sibling[c]
        for c in reversed(children):
            exp = export[c]
            if exp is not None and exp[0] == "left":
                entries.extend(exp[1])
        for c in children:
            exp = export[c]
            if exp is not None and exp[0] == "agg":
                entries.extend(exp[1])

        total = 0
        for e in entries:
            total += e[1]

        if total > W:
            # Pack a replica at j with the smallest entries (stable
            # sort: insertion order breaks demand ties, as in the
            # original); the kernel helpers keep the scan identical in
            # either backend.
            order = stable_argsort([e[1] for e in entries])
            entries = [entries[i] for i in order]
            k = prefix_fit([e[1] for e in entries], W)
            assert k < len(entries)  # total > W and demands ≤ W
            open_replica(v, entries[:k])
            # The entry that burst the capacity gets its own replica at
            # its root node (the paper's jmin / R2 replica).
            overflow = entries[k]
            open_replica(overflow[0], [overflow])
            leftovers = entries[k + 1 :]
            if j != root:
                export[j] = ("left", leftovers)
            else:
                # Paper's R3: leftovers at the root each get a replica.
                for e in leftovers:
                    open_replica(e[0], [e])
        else:
            if j == root:
                if total > 0:
                    merged: List[Tuple[int, int]] = []
                    for (_node, _dem, bundle) in entries:
                        merged.extend(bundle)
                    open_replica(v, [(v, total, merged)])
            else:
                # Aggregate the whole subtree into one entry (Property 1).
                if total > 0:
                    merged = []
                    for (_node, _dem, bundle) in entries:
                        merged.extend(bundle)
                    export[j] = ("agg", [(v, total, merged)])
                else:
                    export[j] = None

    return Placement(replicas, assignments)
