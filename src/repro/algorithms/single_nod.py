"""Algorithm 2 of the paper: ``single-nod``.

A greedy bottom-up 2-approximation for **Single-NoD** — the Single
policy with no distance constraint (Theorem 4).

The algorithm refines ``single-gen`` by exploiting the absence of
distances.  It works on *entries*: a subtree whose total pending demand
fits a server is aggregated into a single entry ``(node, demand)``
(Property 1 of the paper) and treated like a client higher up.  At a node
``j`` whose entries sum to more than ``W``:

* a replica is opened at ``j`` and greedily packed with the *smallest*
  entries (whole entries — Single policy — sorted non-decreasing);
* the first entry that does not fit (``jmin`` in the paper) gets its own
  replica, placed at the entry's node;
* surviving entries are re-parented: they become entries of
  ``parent(j)`` and may be packed there or higher.

Leftover entries reaching the root either fit one last root replica or
each get their own replica (the paper's set ``R₃``).

The proof pairs each packed replica with its ``jmin`` replica
(``|R₁| = |R₂|``) and shows any solution needs ``|R₁| + |R₃|`` replicas,
hence the factor 2, which is tight (Fig. 4, reproduced in
:func:`repro.instances.tight.single_nod_tight_instance`).

Complexity: ``O((Δ log Δ + |C|) · |T|)`` — we sort entry lists per node;
entry bundles are concatenated by reference so total bookkeeping stays
linear in the number of client-to-server handoffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.errors import InfeasibleInstanceError, PolicyError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["single_nod"]


@dataclass
class _Entry:
    """A pending group of whole clients rooted at ``node``.

    ``demand ≤ W`` always holds; ``bundle`` lists the (client, amount)
    pairs the entry is made of.  An entry is served atomically, so the
    Single policy is respected by construction.
    """

    node: int
    demand: int
    bundle: List[Tuple[int, int]] = field(default_factory=list)


@register_solver(
    "single-nod",
    policy=Policy.SINGLE,
    needs_nod=True,
    description="Algorithm 2: 2-approximation for Single-NoD",
)
def single_nod(instance: ProblemInstance) -> Placement:
    """Run Algorithm 2 on ``instance`` and return a full placement.

    Requires an instance without distance constraint (the *NoD*
    variants); raises :class:`PolicyError` otherwise, because the entry
    re-parenting step may move requests arbitrarily far up the tree.
    Guarantees ``|R| ≤ 2·|R_opt|``.
    """
    if instance.has_distance_constraint:
        raise PolicyError(
            "single-nod only solves the NoD variants; use single_gen for "
            "instances with a distance constraint"
        )
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}; "
            "no Single placement exists"
        )

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}

    def open_replica(at: int, entries: List[_Entry]) -> None:
        replicas.append(at)
        for e in entries:
            for client, amount in e.bundle:
                assignments[(client, at)] = (
                    assignments.get((client, at), 0) + amount
                )

    n = len(tree)
    root = tree.root
    # inbox[v]: entries pushed up into v by descendants (the paper's
    # dynamic children set C_v beyond the original children).
    inbox: List[List[_Entry]] = [[] for _ in range(n)]
    # aggregate[v]: the entry v itself forwards to its parent (or None).
    aggregate: List[_Entry] = [None] * n  # type: ignore[list-item]

    for j in tree.postorder():
        if tree.is_leaf(j):
            r = tree.requests(j)
            if j == root:
                if r > 0:
                    open_replica(j, [_Entry(j, r, [(j, r)])])
                continue
            aggregate[j] = _Entry(j, r, [(j, r)]) if r > 0 else None
            continue

        entries: List[_Entry] = list(inbox[j])
        for jp in tree.children(j):
            agg = aggregate[jp]
            if agg is not None and agg.demand > 0:
                entries.append(agg)

        total = sum(e.demand for e in entries)

        if total > W:
            # Pack a replica at j with the smallest entries.
            entries.sort(key=lambda e: e.demand)
            packed: List[_Entry] = []
            acc = 0
            k = 0
            overflow: _Entry = None  # type: ignore[assignment]
            while k < len(entries):
                if acc + entries[k].demand > W:
                    overflow = entries[k]
                    k += 1
                    break
                acc += entries[k].demand
                packed.append(entries[k])
                k += 1
            open_replica(j, packed)
            # The entry that burst the capacity gets its own replica at
            # its root node (the paper's jmin / R2 replica).
            open_replica(overflow.node, [overflow])
            leftovers = entries[k:]
            if j != root:
                inbox[tree.parent(j)].extend(leftovers)
            else:
                # Paper's R3: leftovers at the root each get a replica.
                for e in leftovers:
                    open_replica(e.node, [e])
            aggregate[j] = None
        else:
            if j == root:
                if total > 0:
                    merged = _Entry(j, total, [])
                    for e in entries:
                        merged.bundle.extend(e.bundle)
                    open_replica(root, [merged])
            else:
                # Aggregate the whole subtree into one entry (Property 1).
                if total > 0:
                    merged = _Entry(j, total, [])
                    for e in entries:
                        merged.bundle.extend(e.bundle)
                    aggregate[j] = merged
                else:
                    aggregate[j] = None

    return Placement(replicas, assignments)
