"""Exact dynamic program for Multiple-NoD, on the flat-array substrate.

The paper uses as known background (its reference [3], Benoit,
Rehn-Sonigo & Robert 2008) that **Multiple without distance
constraints is solvable in polynomial time**.  This module implements
that result as a bottom-up dynamic program, giving the library a third,
fully independent optimality oracle for Multiple-NoD next to the
branch-and-bound exact solver and Algorithm 3 — the three are
cross-validated in the tests and benchmark E13.

Formulation
-----------
For every node ``v`` let ``g_v(u)`` be the minimum number of replicas
inside ``subtree(v)`` such that exactly ``u`` requests of the subtree
are *forwarded* above ``v`` (to be served by proper ancestors).  Every
forwarded unit must land on one of ``v``'s proper ancestors, each of
capacity ``W``, so ``u`` is capped at ``W · depth(v)`` (node count
depth), besides the subtree demand itself.

* Leaf ``c`` with demand ``r``: serving ``r − u`` locally needs one
  replica of capacity ``W``, so ``g_c(r) = 0``, ``g_c(u) = 1`` for
  ``r − W ≤ u < r``, and ``∞`` below that.
* Internal ``v``: children pools combine by min-plus convolution
  (``h = g_{c1} ⊞ g_{c2} ⊞ …``, where ``h(U)`` is the cheapest way for
  the children to forward ``U`` up to ``v``); then ``v`` optionally
  hosts a replica absorbing ``a ≤ W`` of the incoming pool::

      g_v(u) = min( h(u),  1 + min_{u < U ≤ u + W} h(U) )

* The answer is ``g_root(0)``; placements are reconstructed by
  backtracking the argmins of every convolution and absorb choice.

Data layout and the monotone fast path
--------------------------------------
The hot loop runs on the :class:`~repro.core.arrays.FlatTree` compiled
from the instance's tree: post-order positions replace the object
traversal, so the bottom-up pass is ``for p in range(n)`` over
contiguous ``demand`` / ``depth`` / ``subtree_demand`` arrays with
children reached through ``first_child`` / ``next_sibling`` chains.

Every DP table is a **non-increasing step function** (forwarding more
can never require more local replicas; see the invariants note below),
which the convolution and absorb kernels exploit:

* :func:`_min_plus_mono` decomposes the child table into its constant
  *levels* and convolves per level — ``O(L · |pool|)`` where ``L`` is
  the number of distinct replica counts, instead of the quadratic
  ``O(|g_child| · |pool|)`` of the general kernel;
* the absorb step reads the window minimum straight off the pool's
  level structure — ``min`` over ``(u, u+W]`` of a non-increasing
  table is its rightmost entry — in O(1) amortised per ``u`` instead
  of O(W).

Invariants
----------
The flat path is **bit-identical** to the original object-graph
formulation (preserved as
:func:`repro.algorithms.reference.multiple_nod_dp_reference`): both
kernels break argmin ties toward the smallest split / absorb index, so
every table, every argmin and hence the reconstructed placement are
exactly equal — property-tested in ``tests/test_arrays.py`` and
benchmarked by ``repro bench`` (``docs/performance.md``).

Complexity ``O(|T| · D · L)`` with total demand ``D`` and replica-count
diversity ``L ≤ |R_opt|`` — pseudo-polynomial, exact, and fast for the
demand scales of the benchmark suite.  (The paper's framework treats
request counts as integers, which this DP requires.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.arrays import flat_tree
from ..core.errors import PolicyError
from ..core.instance import ProblemInstance
from ..core.kernels import (
    absorb_step,
    leaf_table,
    levels,
    min_plus,
    min_plus_mono,
)
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["multiple_nod_dp"]

_INF = float("inf")

# The step-function kernels live in :mod:`repro.core.kernels` (pure
# Python + NumPy backends, selected at import).  The underscore aliases
# keep this module the historical import site for them.
_levels = levels
_min_plus = min_plus
_min_plus_mono = min_plus_mono
_absorb_step = absorb_step


def _fold_node_tables(
    g: List[Optional[List[float]]],
    first_child: List[int],
    next_sibling: List[int],
    p: int,
    W: int,
    u_cap: int,
    pool_cap: int,
) -> Tuple[
    List[float],
    List[Tuple[int, List[int]]],
    List[int],
]:
    """One internal-node DP fold on the flat substrate.

    Convolves the children's tables into the pool with the monotone
    kernel, then applies :func:`repro.core.kernels.absorb_step`.

    Parameters
    ----------
    g:
        Per-post-position DP tables (children of ``p`` already folded).
    first_child, next_sibling:
        The FlatTree child chains.
    p:
        Post position of the internal node being folded.
    W:
        Server capacity.
    u_cap, pool_cap:
        Forward-amount caps for the node table and the children pool.

    Returns
    -------
    ``(table, args, chose)`` — the node's table, the per-child
    convolution argmins (in child order, keyed by child post position)
    and the chosen absorb source per ``u`` (``-1`` = no replica) —
    all bit-identical to the object-graph formulation.
    """
    pool: List[float] = [0.0]
    args: List[Tuple[int, List[int]]] = []
    c = first_child[p]
    while c >= 0:
        pool, arg = min_plus_mono(g[c], pool, pool_cap)
        args.append((c, arg))
        c = next_sibling[c]
    table, chose = absorb_step(pool, u_cap, W)
    return table, args, chose


@register_solver(
    "multiple-nod-dp",
    policy=Policy.MULTIPLE,
    needs_nod=True,
    exact=True,
    description="Knapsack DP: optimal Multiple-NoD on any arity",
)
def multiple_nod_dp(instance: ProblemInstance) -> Placement:
    """Optimal Multiple-NoD placement by dynamic programming.

    Parameters
    ----------
    instance:
        A Multiple-policy instance without distance constraint.

    Returns
    -------
    Placement
        An optimal placement; bit-identical to the object-graph
        baseline :func:`repro.algorithms.reference.multiple_nod_dp_reference`.

    Raises
    ------
    PolicyError
        On instances with a distance constraint (the DP state would
        need per-distance profiles; use the branch-and-bound exact
        solver there).
    """
    if instance.has_distance_constraint:
        raise PolicyError(
            "multiple_nod_dp solves the NoD variants only; use "
            "exact_multiple for distance-constrained instances"
        )
    tree = instance.tree
    W = instance.capacity
    ft = flat_tree(tree)
    n = ft.n
    root = ft.root
    depth = ft.depth
    demand = ft.demand
    sdem = ft.subtree_demand
    first_child = ft.first_child
    next_sibling = ft.next_sibling

    # g[p]: list over u of minimal replicas; bookkeeping for rebuild.
    g: List[Optional[List[float]]] = [None] * n
    conv_args: List[Optional[List[Tuple[int, List[int]]]]] = [None] * n
    absorb_from: List[Optional[List[int]]] = [None] * n

    for p in range(n):
        cap_fwd = W * depth[p]
        u_cap = sdem[p] if sdem[p] < cap_fwd else cap_fwd
        if first_child[p] < 0:
            # Serving r - u locally needs one replica of capacity W.
            g[p] = leaf_table(demand[p], u_cap, W)
            continue
        pool_cap = min(sdem[p], W * (depth[p] + 1))
        table, args, chose = _fold_node_tables(
            g, first_child, next_sibling, p, W, u_cap, pool_cap
        )
        g[p] = table
        conv_args[p] = args
        absorb_from[p] = chose

    g_root = g[root]
    if not g_root or g_root[0] == _INF:  # pragma: no cover - defensive
        raise PolicyError("DP failed to cover the demand")

    # ------------------------------------------------------------------
    # Reconstruction: walk the argmins top-down over post positions,
    # emitting original node ids for the replica set.
    # ------------------------------------------------------------------
    post_to_orig = ft.post_to_orig
    replicas: List[int] = []
    forward = [0] * n
    stack = [root]
    while stack:
        p = stack.pop()
        u = forward[p]
        if first_child[p] < 0:
            if u < demand[p]:
                replicas.append(post_to_orig[p])
            continue
        U = u
        src = absorb_from[p][u]
        if src >= 0:
            replicas.append(post_to_orig[p])
            U = src
        # Split U across children by unwinding the convolutions.
        remaining = U
        for child, arg in reversed(conv_args[p]):
            take = arg[remaining]
            assert take >= 0
            forward[child] = take
            remaining -= take
            stack.append(child)
        # ``remaining`` is the initial pool's zero element.
        assert remaining == 0

    # Client-level routing over the chosen replica set: guaranteed
    # feasible by construction; resolved with the max-flow oracle so
    # the returned placement carries full assignments.
    from .feasibility import multiple_assignment

    assign = multiple_assignment(instance, replicas)
    if assign is None:  # pragma: no cover - contradicts DP feasibility
        raise PolicyError("DP replica set failed flow verification")
    used = set(replicas)
    for (c, s) in assign:
        used.add(s)
    assignments: Dict[Tuple[int, int], int] = dict(assign)
    return Placement(used, assignments)
