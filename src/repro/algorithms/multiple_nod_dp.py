"""Exact dynamic program for Multiple-NoD.

The paper uses as known background (its reference [3], Benoit,
Rehn-Sonigo & Robert 2008) that **Multiple without distance
constraints is solvable in polynomial time**.  This module implements
that result as a bottom-up dynamic program, giving the library a third,
fully independent optimality oracle for Multiple-NoD next to the
branch-and-bound exact solver and Algorithm 3 — the three are
cross-validated in the tests and benchmark E13.

Formulation
-----------
For every node ``v`` let ``g_v(u)`` be the minimum number of replicas
inside ``subtree(v)`` such that exactly ``u`` requests of the subtree
are *forwarded* above ``v`` (to be served by proper ancestors).  Every
forwarded unit must land on one of ``v``'s proper ancestors, each of
capacity ``W``, so ``u`` is capped at ``W · depth(v)`` (node count
depth), besides the subtree demand itself.

* Leaf ``c`` with demand ``r``: serving ``r − u`` locally needs one
  replica of capacity ``W``, so ``g_c(r) = 0``, ``g_c(u) = 1`` for
  ``r − W ≤ u < r``, and ``∞`` below that.
* Internal ``v``: children pools combine by min-plus convolution
  (``h = g_{c1} ⊞ g_{c2} ⊞ …``, where ``h(U)`` is the cheapest way for
  the children to forward ``U`` up to ``v``); then ``v`` optionally
  hosts a replica absorbing ``a ≤ W`` of the incoming pool::

      g_v(u) = min( h(u),  1 + min_{u < U ≤ u + W} h(U) )

* The answer is ``g_root(0)``; placements are reconstructed by
  backtracking the argmins of every convolution and absorb choice.

Complexity ``O(|T| · D²)`` where ``D`` is the total demand —
pseudo-polynomial, exact, and fast for the demand scales of the
benchmark suite.  (The paper's framework treats request counts as
integers, which this DP requires.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.errors import PolicyError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["multiple_nod_dp"]

_INF = float("inf")


def _min_plus(
    a: List[float], b: List[float], cap: int
) -> Tuple[List[float], List[Optional[int]]]:
    """Min-plus convolution ``c(U) = min_j a(j) + b(U-j)``, ``U ≤ cap``.

    Returns the table and, for reconstruction, the argmin split point
    (the amount taken from ``a``) for each ``U``.
    """
    n = min(len(a) + len(b) - 1, cap + 1)
    out = [_INF] * n
    arg: List[Optional[int]] = [None] * n
    for j, aj in enumerate(a):
        if aj == _INF or j >= n:
            continue
        hi = min(len(b), n - j)
        for k in range(hi):
            val = aj + b[k]
            if val < out[j + k]:
                out[j + k] = val
                arg[j + k] = j
    return out, arg


@register_solver(
    "multiple-nod-dp",
    policy=Policy.MULTIPLE,
    needs_nod=True,
    exact=True,
    description="Knapsack DP: optimal Multiple-NoD on any arity",
)
def multiple_nod_dp(instance: ProblemInstance) -> Placement:
    """Optimal Multiple-NoD placement by dynamic programming.

    Raises :class:`PolicyError` on instances with a distance constraint
    (the DP state would need per-distance profiles; use the
    branch-and-bound exact solver there).
    """
    if instance.has_distance_constraint:
        raise PolicyError(
            "multiple_nod_dp solves the NoD variants only; use "
            "exact_multiple for distance-constrained instances"
        )
    tree = instance.tree
    W = instance.capacity
    root = tree.root

    # Node-count depth (number of proper ancestors) caps the forward
    # amount: every forwarded unit occupies ancestor capacity.
    n = len(tree)
    anc_count = [0] * n
    for v in tree.topological_order():
        if v != root:
            anc_count[v] = anc_count[tree.parent(v)] + 1

    # g[v]: list over u of minimal replicas; bookkeeping for rebuild.
    g: List[List[float]] = [[] for _ in range(n)]
    # For internal nodes: the convolution argmins per child, and the
    # chosen absorb per u.
    conv_args: List[List[Tuple[int, List[Optional[int]]]]] = [
        [] for _ in range(n)
    ]
    pool_tables: List[List[float]] = [[] for _ in range(n)]
    absorb_from: List[List[Optional[int]]] = [[] for _ in range(n)]

    subtree_demand = [0] * n
    for v in tree.postorder():
        subtree_demand[v] = tree.requests(v) + sum(
            subtree_demand[c] for c in tree.children(v)
        )

    for v in tree.postorder():
        u_cap = min(subtree_demand[v], W * anc_count[v])
        if tree.is_leaf(v):
            r = tree.requests(v)
            # Serving r - u locally needs one replica of capacity W.
            table = []
            for u in range(u_cap + 1):
                if u >= r:
                    table.append(0.0)
                elif r - u <= W:
                    table.append(1.0)
                else:
                    table.append(_INF)
            g[v] = table
            continue

        # Children pool: how cheaply can U requests arrive at v?
        pool_cap = min(subtree_demand[v], W * (anc_count[v] + 1))
        pool: List[float] = [0.0]
        args: List[Tuple[int, List[Optional[int]]]] = []
        for child in tree.children(v):
            pool, arg = _min_plus(g[child], pool, pool_cap)
            args.append((child, arg))
        conv_args[v] = args
        pool_tables[v] = pool

        table = [_INF] * (u_cap + 1)
        chose: List[Optional[int]] = [None] * (u_cap + 1)
        for u in range(u_cap + 1):
            # No replica at v: the pool must already be exactly u.
            if u < len(pool) and pool[u] < table[u]:
                table[u] = pool[u]
                chose[u] = None
            # Replica at v absorbing U - u (1..W).
            hi = min(u + W, len(pool) - 1)
            for U in range(u + 1, hi + 1):
                val = pool[U] + 1.0
                if val < table[u]:
                    table[u] = val
                    chose[u] = U
        g[v] = table
        absorb_from[v] = chose

    if not g[root] or g[root][0] == _INF:  # pragma: no cover - defensive
        raise PolicyError("DP failed to cover the demand")

    # ------------------------------------------------------------------
    # Reconstruction.
    # ------------------------------------------------------------------
    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}
    # serve_up[v] = (u, pending list) -- amounts (client, w) forwarded
    # through v's parent boundary are resolved top-down: we track, for
    # each node, how many requests it must forward, and whether it
    # hosts a replica; actual client-level routing is resolved after
    # the structural pass by a greedy flow over the chosen replica set.
    forward: Dict[int, int] = {root: 0}
    stack = [root]
    while stack:
        v = stack.pop()
        u = forward[v]
        if tree.is_leaf(v):
            if u < tree.requests(v):
                replicas.append(v)
            continue
        U = u
        src = absorb_from[v][u]
        if src is not None:
            replicas.append(v)
            U = src
        # Split U across children by unwinding the convolutions.
        remaining = U
        for child, arg in reversed(conv_args[v]):
            take = arg[remaining]
            assert take is not None
            forward[child] = take
            remaining -= take
            stack.append(child)
        # ``remaining`` is the initial pool's zero element.
        assert remaining == 0

    # Client-level routing over the chosen replica set: guaranteed
    # feasible by construction; resolved with the max-flow oracle so
    # the returned placement carries full assignments.
    from .feasibility import multiple_assignment

    assign = multiple_assignment(instance, replicas)
    if assign is None:  # pragma: no cover - contradicts DP feasibility
        raise PolicyError("DP replica set failed flow verification")
    used = set(replicas)
    for (c, s) in assign:
        used.add(s)
    assignments = dict(assign)
    return Placement(used, assignments)
