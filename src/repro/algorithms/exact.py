"""Exact (optimal) solvers by branch-and-bound.

The Single variants are NP-hard even on binary trees with no distance
constraint (Theorem 1), and Multiple with unbounded demands is NP-hard
too (Theorem 5) — so these solvers are exponential-time by necessity.
They exist as *optimality oracles* for the test suite and the
benchmark harness (approximation-ratio measurements against true optima
on small instances), not as production solvers.

* :func:`exact_single` — depth-first search over clients: each client
  picks an eligible ancestor; branches that cannot beat the incumbent
  (current replica count plus a remaining-volume bound) are pruned.
* :func:`exact_multiple` — iterates candidate replica counts ``k`` from
  the combinatorial lower bound upward and searches subsets of candidate
  nodes of size ``k``, testing each with the max-flow feasibility oracle.
  The first feasible ``k`` is optimal.
* :func:`exact_optimal` — dispatch on the instance policy.

All solvers return a fully validated-shape
:class:`~repro.core.placement.Placement`; they raise
:class:`InfeasibleInstanceError` when no placement exists and
:class:`SolverError` when the search budget is exhausted.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Set, Tuple

from ..core.bounds import lower_bound
from ..core.errors import InfeasibleInstanceError, SolverError
from ..core.instance import ProblemInstance
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver
from .feasibility import multiple_assignment
from .single_gen import single_gen

__all__ = ["exact_single", "exact_multiple", "exact_optimal"]


def _candidate_servers(instance: ProblemInstance) -> List[int]:
    """Nodes eligible to serve at least one demanding client."""
    tree = instance.tree
    cands: Set[int] = set()
    for c in tree.clients:
        if tree.requests(c) == 0:
            continue
        for s, _d in tree.eligible_servers(c, instance.dmax):
            cands.add(s)
    return sorted(cands)


@register_solver(
    "exact-single",
    policy=Policy.SINGLE,
    exact=True,
    budget_kwarg="node_budget",
    stats_kwarg="stats",
    description="Branch-and-bound optimum for the Single policy",
)
def exact_single(
    instance: ProblemInstance,
    node_budget: int = 5_000_000,
    stats: Optional[Dict[str, int]] = None,
) -> Placement:
    """Optimal Single placement by branch-and-bound over clients.

    Exponential worst case (the problem is strongly NP-hard); intended
    for instances with up to roughly 20 demanding clients.  When a
    ``stats`` dict is supplied it receives the ``nodes_expanded``
    counter on return (including budget-exhausted exits).
    """
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}; "
            "no Single placement exists"
        )

    elig: Dict[int, List[int]] = {}
    for c in tree.clients:
        if tree.requests(c) > 0:
            elig[c] = [s for (s, _d) in tree.eligible_servers(c, instance.dmax)]
    clients = sorted(elig, key=lambda c: (len(elig[c]), -tree.requests(c)))
    demands = [tree.requests(c) for c in clients]
    m = len(clients)
    if m == 0:
        return Placement([], {})

    suffix_demand = [0] * (m + 1)
    for k in range(m - 1, -1, -1):
        suffix_demand[k] = suffix_demand[k + 1] + demands[k]

    # Incumbent: the greedy approximation (always feasible here).
    incumbent = single_gen(instance)
    best_count = [incumbent.n_replicas]
    best_choice: List[Optional[List[int]]] = [None]
    glb = lower_bound(instance)

    load: Dict[int, int] = {}
    choice: List[int] = [0] * m
    budget = [node_budget]
    exhausted = [False]

    def bound_ok(k: int) -> bool:
        """Can this branch still beat the incumbent?"""
        used = len(load)
        if used >= best_count[0]:
            return False
        free = sum(W - v for v in load.values())
        deficit = suffix_demand[k] - free
        if deficit > 0:
            extra = -(-deficit // W)
            if used + extra >= best_count[0]:
                return False
        return True

    def dfs(k: int) -> None:
        if best_count[0] <= glb:
            return  # the incumbent already meets the lower bound
        if budget[0] <= 0:
            exhausted[0] = True
            return
        budget[0] -= 1
        if k == m:
            if len(load) < best_count[0]:
                best_count[0] = len(load)
                best_choice[0] = list(choice[:m])
            return
        if not bound_ok(k):
            return
        c = clients[k]
        d = demands[k]
        # Try already-open servers first: no objective increase.
        for s in elig[c]:
            if s in load and load[s] + d <= W:
                load[s] += d
                choice[k] = s
                dfs(k + 1)
                load[s] -= d
        for s in elig[c]:
            if s in load:
                continue
            if len(load) + 1 >= best_count[0]:
                break
            load[s] = d
            choice[k] = s
            dfs(k + 1)
            del load[s]

    try:
        dfs(0)
    finally:
        if stats is not None:
            stats["nodes_expanded"] = node_budget - budget[0]
    if exhausted[0] and best_count[0] > glb:
        raise SolverError(
            "exact_single: search budget exhausted before proving optimality"
        )

    if best_choice[0] is None:
        # The greedy incumbent was never improved; it is optimal.
        return incumbent
    assignments = {
        (clients[k], best_choice[0][k]): demands[k] for k in range(m)
    }
    replicas = set(best_choice[0])
    return Placement(replicas, assignments)


@register_solver(
    "exact-multiple",
    policy=Policy.MULTIPLE,
    exact=True,
    budget_kwarg="subset_budget",
    stats_kwarg="stats",
    description="Subset-enumeration + max-flow optimum for Multiple",
)
def exact_multiple(
    instance: ProblemInstance,
    subset_budget: int = 5_000_000,
    stats: Optional[Dict[str, int]] = None,
) -> Placement:
    """Optimal Multiple placement by replica-count iteration + max flow.

    For each ``k`` from the lower bound upward, searches size-``k``
    subsets of candidate nodes; a subset is feasible iff the
    transportation max-flow saturates all demands.  The first feasible
    subset found at the smallest feasible ``k`` is returned.
    """
    tree = instance.tree
    if tree.total_requests == 0:
        return Placement([], {})
    reason = instance.with_policy(Policy.MULTIPLE).trivially_infeasible()
    if reason is not None:
        raise InfeasibleInstanceError(reason)

    cands = _candidate_servers(instance)
    lb = lower_bound(instance.with_policy(Policy.MULTIPLE))
    lb = max(lb, 1)
    # Upper bound: serving every demanding client locally is feasible
    # only when r_i <= k_i * W locally... the all-local set may need
    # helpers; the full candidate set is always feasible if anything is.
    explored = 0
    try:
        for k in range(lb, len(cands) + 1):
            for subset in combinations(cands, k):
                explored += 1
                if explored > subset_budget:
                    raise SolverError(
                        "exact_multiple: subset budget exhausted before "
                        "proving optimality"
                    )
                assign = multiple_assignment(instance, subset)
                if assign is not None:
                    used = set(subset)
                    return Placement(used, assign)
    finally:
        if stats is not None:
            stats["subsets_explored"] = explored
    raise InfeasibleInstanceError(
        "no replica subset (even all candidates) can serve all demands"
    )


@register_solver(
    "exact",
    exact=True,
    budget_kwarg="budget",
    stats_kwarg="stats",
    description="Policy-dispatching exact optimum (Single or Multiple)",
)
def exact_optimal(
    instance: ProblemInstance, budget: Optional[int] = None, **kwargs
) -> Placement:
    """Optimal placement for the instance's policy (dispatch helper).

    ``budget`` maps to whichever budget the dispatched solver takes
    (``node_budget`` / ``subset_budget``), so callers that don't know
    the policy — the sweep runner's ``--budget`` flag — cap both.
    """
    if instance.policy is Policy.SINGLE:
        if budget is not None:
            kwargs.setdefault("node_budget", budget)
        return exact_single(instance, **kwargs)
    if budget is not None:
        kwargs.setdefault("subset_budget", budget)
    return exact_multiple(instance, **kwargs)
