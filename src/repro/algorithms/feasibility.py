"""Feasibility oracles for a *fixed* replica set.

Given an instance and a candidate replica set ``R``, decide whether all
client demands can be assigned to servers of ``R`` under the model
constraints, and if so produce the assignment:

* :func:`multiple_assignment` — Multiple policy.  Splitting is allowed,
  so this is exactly a transportation problem: a bipartite flow network
  ``source → clients → eligible servers → sink`` solved with our Dinic
  implementation.  Feasible iff the max flow equals the total demand.
  Polynomial.
* :func:`single_assignment` — Single policy.  Whole clients must be
  packed into servers, a generalised bin-packing feasibility question
  (NP-hard); solved by backtracking over clients with
  most-constrained-first ordering, capacity pruning and a volume bound.
  Intended for the small instances the exact solver explores.

Both return ``None`` when infeasible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.instance import ProblemInstance
from ..flow import FlowNetwork, max_flow

__all__ = ["multiple_assignment", "single_assignment", "eligible_map"]


def eligible_map(
    instance: ProblemInstance, replicas: Iterable[int]
) -> Optional[Dict[int, List[int]]]:
    """For each demanding client, its eligible servers within ``R``.

    Returns ``None`` if some client has no eligible server at all (then
    no assignment can exist under either policy).
    """
    tree = instance.tree
    rset = set(replicas)
    out: Dict[int, List[int]] = {}
    for c in tree.clients:
        if tree.requests(c) == 0:
            continue
        elig = [s for (s, _d) in tree.eligible_servers(c, instance.dmax) if s in rset]
        if not elig:
            return None
        out[c] = elig
    return out


def multiple_assignment(
    instance: ProblemInstance, replicas: Iterable[int]
) -> Optional[Dict[Tuple[int, int], int]]:
    """Assignment under the Multiple policy, or ``None`` if infeasible.

    Builds the transportation network and checks that the maximum flow
    saturates every client's demand.
    """
    replicas = list(replicas)
    elig = eligible_map(instance, replicas)
    if elig is None:
        return None
    tree = instance.tree
    W = instance.capacity
    total = tree.total_requests
    if total == 0:
        return {}
    if total > W * len(set(replicas)):
        return None

    clients = sorted(elig)
    servers = sorted(set(replicas))
    cindex = {c: 1 + k for k, c in enumerate(clients)}
    sindex = {s: 1 + len(clients) + k for k, s in enumerate(servers)}
    n_nodes = 2 + len(clients) + len(servers)
    source, sink = 0, n_nodes - 1

    g = FlowNetwork(n_nodes)
    middle_arcs: Dict[int, Tuple[int, int]] = {}
    for c in clients:
        g.add_edge(source, cindex[c], tree.requests(c))
        for s in elig[c]:
            eid = g.add_edge(cindex[c], sindex[s], tree.requests(c))
            middle_arcs[eid] = (c, s)
    for s in servers:
        g.add_edge(sindex[s], sink, W)

    if max_flow(g, source, sink) != total:
        return None
    out: Dict[Tuple[int, int], int] = {}
    for eid, (c, s) in middle_arcs.items():
        f = g.flow_on(eid)
        if f > 0:
            out[(c, s)] = f
    return out


def single_assignment(
    instance: ProblemInstance,
    replicas: Iterable[int],
    node_budget: int = 2_000_000,
) -> Optional[Dict[Tuple[int, int], int]]:
    """Assignment under the Single policy, or ``None`` if infeasible.

    Backtracking search: clients are ordered by (number of eligible
    servers, -demand) so the most constrained are placed first; a server
    is tried only while it has room; a running volume bound prunes
    branches whose total remaining capacity cannot cover the remaining
    demand.  ``node_budget`` caps the number of search nodes (the search
    is exponential in the worst case — Theorem 1).
    """
    replicas = list(dict.fromkeys(replicas))
    elig = eligible_map(instance, replicas)
    if elig is None:
        return None
    tree = instance.tree
    W = instance.capacity

    clients = sorted(elig, key=lambda c: (len(elig[c]), -tree.requests(c)))
    demands = [tree.requests(c) for c in clients]
    if any(d > W for d in demands):
        return None
    total = sum(demands)
    if total > W * len(replicas):
        return None

    load: Dict[int, int] = {s: 0 for s in replicas}
    choice: List[Optional[int]] = [None] * len(clients)
    suffix_demand = [0] * (len(clients) + 1)
    for k in range(len(clients) - 1, -1, -1):
        suffix_demand[k] = suffix_demand[k + 1] + demands[k]

    budget = [node_budget]

    def backtrack(k: int) -> bool:
        if k == len(clients):
            return True
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        free = sum(W - v for v in load.values())
        if suffix_demand[k] > free:
            return False
        c = clients[k]
        d = demands[k]
        tried = set()
        for s in elig[c]:
            if s in tried:
                continue
            tried.add(s)
            if load[s] + d <= W:
                load[s] += d
                choice[k] = s
                if backtrack(k + 1):
                    return True
                load[s] -= d
                choice[k] = None
        return False

    if not backtrack(0):
        return None
    return {
        (clients[k], choice[k]): demands[k]
        for k in range(len(clients))
        if demands[k] > 0
    }
