"""Feasibility oracles for a *fixed* replica set.

Given an instance and a candidate replica set ``R``, decide whether all
client demands can be assigned to servers of ``R`` under the model
constraints, and if so produce the assignment:

* :func:`multiple_assignment` — Multiple policy.  Splitting is allowed,
  so this is exactly a transportation problem: a bipartite flow network
  ``source → clients → eligible servers → sink`` solved with our Dinic
  implementation.  Feasible iff the max flow equals the total demand.
  Polynomial.
* :func:`single_assignment` — Single policy.  Whole clients must be
  packed into servers, a generalised bin-packing feasibility question
  (NP-hard); solved by backtracking over clients with
  most-constrained-first ordering, capacity pruning and a volume bound.
  Intended for the small instances the exact solver explores.

Both return ``None`` when infeasible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.arrays import flat_tree
from ..core.instance import ProblemInstance
from ..core.tree import NO_PARENT, Tree
from ..flow import FlowNetwork, max_flow

__all__ = ["multiple_assignment", "single_assignment", "eligible_map"]


def eligible_map(
    instance: ProblemInstance, replicas: Iterable[int]
) -> Optional[Dict[int, List[int]]]:
    """For each demanding client, its eligible servers within ``R``.

    Returns ``None`` if some client has no eligible server at all (then
    no assignment can exist under either policy).  The walk inlines
    :meth:`Tree.eligible_servers` on the parent/delta arrays — same
    client-upward order and the same distance accumulation, without the
    per-client pair-list allocation.
    """
    tree = instance.tree
    rset = set(replicas)
    dmax = instance.dmax
    parents = tree._parents
    deltas = tree._deltas
    requests = tree._requests
    out: Dict[int, List[int]] = {}
    for c in tree.clients:
        if requests[c] == 0:
            continue
        elig: List[int] = []
        node = c
        if dmax is None:
            while node != NO_PARENT:
                if node in rset:
                    elig.append(node)
                node = parents[node]
        else:
            dist = 0.0
            while node != NO_PARENT and dist <= dmax:
                if node in rset:
                    elig.append(node)
                dist += deltas[node]
                node = parents[node]
        if not elig:
            return None
        out[c] = elig
    return out


def multiple_assignment(
    instance: ProblemInstance, replicas: Iterable[int]
) -> Optional[Dict[Tuple[int, int], int]]:
    """Assignment under the Multiple policy, or ``None`` if infeasible.

    Without a distance constraint every client's eligible set is its
    whole root path, so the eligibility structure is *laminar* and the
    lowest-server-first greedy is exact (see :func:`_assign_nod`) —
    linear time instead of a max-flow solve.  With ``dmax`` the eligible
    chains become windows, laminarity breaks, and the transportation
    network is solved with Dinic: feasible iff the maximum flow
    saturates every client's demand.
    """
    replicas = list(replicas)
    tree = instance.tree
    W = instance.capacity
    total = tree.total_requests
    rset = set(replicas)
    if instance.dmax is None:
        if total == 0:
            return {}
        if total > W * len(rset):
            return None
        return _assign_nod(tree, rset, W)
    elig = eligible_map(instance, replicas)
    if elig is None:
        return None
    if total == 0:
        return {}
    if total > W * len(rset):
        return None

    clients = sorted(elig)
    servers = sorted(set(replicas))
    cindex = {c: 1 + k for k, c in enumerate(clients)}
    sindex = {s: 1 + len(clients) + k for k, s in enumerate(servers)}
    n_nodes = 2 + len(clients) + len(servers)
    source, sink = 0, n_nodes - 1

    # Arc ids are sequential, so one bulk build plus a parallel
    # ``(client, server)`` list replaces the per-arc id bookkeeping;
    # insertion order (source arcs interleaved with each client's
    # middle arcs, then the sink arcs) is that of the original
    # per-call build, keeping the flow split identical.
    requests = tree._requests
    arcs: List[Tuple[int, int, int]] = []
    middle: List[Optional[Tuple[int, int]]] = []
    for c in clients:
        r = requests[c]
        ci = cindex[c]
        arcs.append((source, ci, r))
        middle.append(None)
        for s in elig[c]:
            arcs.append((ci, sindex[s], r))
            middle.append((c, s))
    n_client_arcs = len(arcs)
    for s in servers:
        arcs.append((sindex[s], sink, W))

    g = FlowNetwork(n_nodes)
    g.add_edges(arcs)

    if max_flow(g, source, sink) != total:
        return None
    capacity = g.capacity
    orig = g._orig_capacity
    out: Dict[Tuple[int, int], int] = {}
    for i in range(n_client_arcs):
        cs = middle[i]
        if cs is not None:
            eid = 2 * i
            f = orig[eid] - capacity[eid]
            if f > 0:
                out[cs] = f
    return out


def _assign_nod(
    tree: Tree, rset: set, W: int
) -> Optional[Dict[Tuple[int, int], int]]:
    """Exact Multiple-NoD assignment by the lowest-server-first greedy.

    Pending ``(client, amount)`` units bubble up the flat post-order;
    every replica absorbs as much as fits (FIFO in child order, the last
    entry split).  Lowest-first is exact for laminar eligibility: by
    induction up the tree the greedy's forwarded amount at every node is
    a lower bound over *all* assignments (a replica can only serve its
    own subtree, so absorbing early never starves anyone above), hence
    units stranded at the root certify infeasibility.
    """
    ft = flat_tree(tree)
    n = ft.n
    demand = ft.demand
    first_child = ft.first_child
    next_sibling = ft.next_sibling
    post_to_orig = ft.post_to_orig
    pending: List[Optional[List[List[int]]]] = [None] * n
    out: Dict[Tuple[int, int], int] = {}
    for p in range(n):
        v = post_to_orig[p]
        c = first_child[p]
        if c < 0:
            r = demand[p]
            cur: List[List[int]] = [[v, r]] if r > 0 else []
        else:
            cur = []
            while c >= 0:
                ch = pending[c]
                if ch:
                    cur.extend(ch)
                c = next_sibling[c]
        if cur and v in rset:
            room = W
            k = 0
            ncur = len(cur)
            while k < ncur and room > 0:
                entry = cur[k]
                amt = entry[1]
                if amt <= room:
                    out[(entry[0], v)] = amt
                    room -= amt
                    k += 1
                else:
                    out[(entry[0], v)] = room
                    entry[1] = amt - room
                    room = 0
            cur = cur[k:]
        pending[p] = cur
    if pending[ft.root]:
        return None
    return out


def single_assignment(
    instance: ProblemInstance,
    replicas: Iterable[int],
    node_budget: int = 2_000_000,
) -> Optional[Dict[Tuple[int, int], int]]:
    """Assignment under the Single policy, or ``None`` if infeasible.

    Backtracking search: clients are ordered by (number of eligible
    servers, -demand) so the most constrained are placed first; a server
    is tried only while it has room; a running volume bound prunes
    branches whose total remaining capacity cannot cover the remaining
    demand.  ``node_budget`` caps the number of search nodes (the search
    is exponential in the worst case — Theorem 1).
    """
    replicas = list(dict.fromkeys(replicas))
    elig = eligible_map(instance, replicas)
    if elig is None:
        return None
    tree = instance.tree
    W = instance.capacity

    clients = sorted(elig, key=lambda c: (len(elig[c]), -tree.requests(c)))
    demands = [tree.requests(c) for c in clients]
    if any(d > W for d in demands):
        return None
    total = sum(demands)
    if total > W * len(replicas):
        return None

    load: Dict[int, int] = {s: 0 for s in replicas}
    choice: List[Optional[int]] = [None] * len(clients)
    suffix_demand = [0] * (len(clients) + 1)
    for k in range(len(clients) - 1, -1, -1):
        suffix_demand[k] = suffix_demand[k + 1] + demands[k]

    budget = [node_budget]

    def backtrack(k: int) -> bool:
        if k == len(clients):
            return True
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        free = sum(W - v for v in load.values())
        if suffix_demand[k] > free:
            return False
        c = clients[k]
        d = demands[k]
        tried = set()
        for s in elig[c]:
            if s in tried:
                continue
            tried.add(s)
            if load[s] + d <= W:
                load[s] += d
                choice[k] = s
                if backtrack(k + 1):
                    return True
                load[s] -= d
                choice[k] = None
        return False

    if not backtrack(0):
        return None
    return {
        (clients[k], choice[k]): demands[k]
        for k in range(len(clients))
        if demands[k] > 0
    }
