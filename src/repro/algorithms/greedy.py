"""Baseline heuristics.

The paper's algorithms are greedy, but carefully engineered; these
simpler baselines calibrate how much that engineering buys:

* :func:`local_placement` — the trivial always-feasible solution the
  paper mentions in Section 3: every demanding client serves itself
  (``servers(i) = {i}``, ``R = C``).
* :func:`single_greedy_packing` — a naive Single heuristic: walk clients
  most-constrained-first, send each to its highest eligible ancestor
  that has an open replica with room, opening one otherwise.
* :func:`multiple_greedy` — a generalisation of the paper's
  ``multiple-bin`` flow to arbitrary arity: pending requests travel
  upward, a replica opens on distance starvation or capacity overflow
  and absorbs the most-constrained prefix; leftovers that cannot travel
  are served at their own client nodes.  On binary trees with
  ``r_i ≤ W`` this coincides with Algorithm 3's placement rule but uses
  the simpler fallback instead of ``extra-server``, so it is *not*
  optimal — benchmark E6 measures the gap, ablating the value of
  ``extra-server``.

All three return checker-valid placements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.arrays import flat_tree
from ..core.errors import InfeasibleInstanceError
from ..core.instance import ProblemInstance
from ..core.kernels import capacity_split, stable_argsort
from ..core.placement import Placement
from ..core.policies import Policy
from ..runner.registry import register_solver

__all__ = ["local_placement", "single_greedy_packing", "multiple_greedy"]


@register_solver(
    "local",
    description="Baseline: every demanding client hosts its own replica",
)
def local_placement(instance: ProblemInstance) -> Placement:
    """Every demanding client hosts its own replica (``R = C``)."""
    tree = instance.tree
    if tree.max_request > instance.capacity:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={instance.capacity}; "
            "even the all-local placement is invalid"
        )
    replicas = [c for c in tree.clients if tree.requests(c) > 0]
    assignments = {(c, c): tree.requests(c) for c in replicas}
    return Placement(replicas, assignments)


@register_solver(
    "greedy-packing",
    policy=Policy.SINGLE,
    description="Strawman Single heuristic: highest eligible open server",
)
def single_greedy_packing(instance: ProblemInstance) -> Placement:
    """Naive Single heuristic: highest eligible open server, else open one.

    Clients are processed most-constrained-first (fewest eligible
    servers, then largest demand).  No approximation guarantee — this is
    the strawman the paper's algorithms are measured against.
    """
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}"
        )
    elig: Dict[int, List[int]] = {}
    for c in tree.clients:
        if tree.requests(c) > 0:
            # eligible_servers returns client-upward order; reverse for
            # highest-first packing.
            elig[c] = [s for (s, _d) in tree.eligible_servers(c, instance.dmax)][::-1]
    order = sorted(elig, key=lambda c: (len(elig[c]), -tree.requests(c)))

    load: Dict[int, int] = {}
    assignments: Dict[Tuple[int, int], int] = {}
    for c in order:
        d = tree.requests(c)
        placed = False
        for s in elig[c]:
            if s in load and load[s] + d <= W:
                load[s] += d
                assignments[(c, s)] = d
                placed = True
                break
        if not placed:
            for s in elig[c]:
                if s not in load:
                    load[s] = d
                    assignments[(c, s)] = d
                    placed = True
                    break
        if not placed:
            # All eligible servers are open but full: fall back to the
            # client itself if it is not yet open (it always is eligible,
            # so this only fails if c is open and full — impossible since
            # a client's demand is assigned at most once).
            raise InfeasibleInstanceError(
                f"greedy packing failed to place client {c}"
            )
    return Placement(load.keys(), assignments)


@register_solver(
    "multiple-greedy",
    policy=Policy.MULTIPLE,
    description="Any-arity Multiple heuristic in Algorithm 3 style",
)
def multiple_greedy(instance: ProblemInstance) -> Placement:
    """Any-arity Multiple heuristic in the style of Algorithm 3.

    Pending triples ``(d, w, client)`` travel up; a replica opens when
    the head cannot cross the next edge or the pending volume exceeds
    ``W``, absorbing the most-constrained prefix.  Remaining triples that
    still cannot travel are served at their own client node (valid: the
    residual amount of a client never exceeds ``r_i ≤ W``).

    Parameters
    ----------
    instance:
        Any Multiple-policy instance with ``r_i ≤ W``; works with or
        without a distance constraint.

    Returns
    -------
    Placement
        A checker-valid placement.  The hot loop runs on the flat
        post-order substrate but is bit-identical to the object-graph
        baseline
        :func:`repro.algorithms.reference.multiple_greedy_reference`
        (property-tested in ``tests/test_arrays.py``).

    Raises
    ------
    InfeasibleInstanceError
        If some client demands more than ``W``.
    """
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"multiple_greedy requires r_i <= W (max r_i = "
            f"{tree.max_request}, W = {W})"
        )
    dmax = math.inf if instance.dmax is None else float(instance.dmax)

    # Hot loop on the flat substrate: post positions 0..n-1 are already
    # children-first, per-node data are contiguous array reads, and the
    # child walk is the first_child/next_sibling chain.  Triples carry
    # *original* client ids so assignments need no translation.
    # Bit-identical to the object-graph baseline
    # (repro.algorithms.reference.multiple_greedy_reference): every
    # node's result is a pure function of its children's pending lists,
    # the merge respects child order and the sort is stable.
    ft = flat_tree(tree)
    n = ft.n
    root = ft.root
    demand = ft.demand
    delta = ft.delta
    first_child = ft.first_child
    next_sibling = ft.next_sibling
    post_to_orig = ft.post_to_orig

    in_R = [False] * n  # indexed by original node id
    assignments: Dict[Tuple[int, int], int] = {}
    pending: List[List[Tuple[float, int, int]]] = [[] for _ in range(n)]

    def serve(at: int, triples: List[Tuple[float, int, int]]) -> None:
        in_R[at] = True
        for (_d, w, i) in triples:
            if w > 0:
                assignments[(i, at)] = assignments.get((i, at), 0) + w

    for j in range(n):
        if first_child[j] < 0:
            r = demand[j]
            if r == 0:
                continue
            i = post_to_orig[j]
            if j == root or delta[j] > dmax:
                serve(i, [(0.0, r, i)])
            else:
                pending[j] = [(0.0, r, i)]
            continue

        temp: List[Tuple[float, int, int]] = []
        child = first_child[j]
        while child >= 0:
            dc = delta[child]
            temp.extend((d + dc, w, i) for (d, w, i) in pending[child])
            pending[child] = []
            child = next_sibling[child]
        if not temp:
            continue
        # Farthest-first, stable on ties — the kernel helpers keep the
        # order and the capacity scan identical in either backend.
        order = stable_argsort([-t[0] for t in temp])
        temp = [temp[i] for i in order]
        wtot = sum(w for (_d, w, _i) in temp)
        is_root = j == root

        if is_root or temp[0][0] + delta[j] > dmax or wtot > W:
            k, partial = capacity_split([w for (_d, w, _i) in temp], W)
            absorbed = list(temp[:k])
            temp = temp[k:]
            if partial > 0:
                d, w, i = temp[0]
                absorbed.append((d, partial, i))
                temp[0] = (d, w - partial, i)
            serve(post_to_orig[j], absorbed)

        # Leftovers that cannot travel upward are sent back to their own
        # client nodes (self-serving is always distance-feasible).
        if temp and (is_root or temp[0][0] + delta[j] > dmax):
            stuck: List[Tuple[float, int, int]] = []
            moving: List[Tuple[float, int, int]] = []
            for (d, w, i) in temp:
                if is_root or d + delta[j] > dmax:
                    stuck.append((d, w, i))
                else:
                    moving.append((d, w, i))
            for (d, w, i) in stuck:
                serve(i, [(0.0, w, i)])
            temp = moving
        pending[j] = temp

    replicas = [v for v in range(len(tree)) if in_R[v]]
    return Placement(replicas, assignments)
