"""Local-search improvement for Single placements.

The paper's conclusion sketches future work on better Single
approximations ("push servers towards the root whenever possible").
This module implements that idea as a post-processing pass usable after
any Single solver:

* **close** moves — try to empty a replica by re-assigning every client
  it serves to other open replicas (eligibility + capacity respected);
* **merge** moves — fuse two replicas whose combined load fits ``W``
  into one node eligible for all their clients (possibly one of the two
  or a common ancestor), netting one replica fewer.

The search runs rounds until a fixed point or ``max_rounds``.  The
result never has more replicas than the input and stays checker-valid.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.instance import ProblemInstance
from ..core.placement import Placement

__all__ = ["improve_single"]


def _try_close(
    instance: ProblemInstance,
    victim: int,
    load: Dict[int, int],
    assign: Dict[int, int],
) -> Optional[Dict[int, int]]:
    """Reassignment of the victim's clients to other open replicas.

    ``assign`` maps client -> server.  Returns the new client->server
    mapping for the victim's clients, or ``None`` if no reassignment
    fits.  Uses first-fit-decreasing over the victim's clients.
    """
    tree = instance.tree
    W = instance.capacity
    moved = sorted(
        (c for c, s in assign.items() if s == victim),
        key=lambda c: -tree.requests(c),
    )
    free = {s: W - l for s, l in load.items() if s != victim}
    out: Dict[int, int] = {}
    for c in moved:
        d = tree.requests(c)
        target = None
        for s, _dist in tree.eligible_servers(c, instance.dmax):
            if s != victim and s in free and free[s] >= d:
                target = s
                break
        if target is None:
            return None
        free[target] -= d
        out[c] = target
    return out


def _common_targets(
    instance: ProblemInstance, clients: List[int]
) -> List[int]:
    """Nodes eligible to serve every client, deepest first."""
    tree = instance.tree
    candidates = None
    for c in clients:
        elig = {s for s, _d in tree.eligible_servers(c, instance.dmax)}
        candidates = elig if candidates is None else candidates & elig
        if not candidates:
            return []
    return sorted(candidates or [], key=tree.depth, reverse=True)


def improve_single(
    instance: ProblemInstance,
    placement: Placement,
    max_rounds: int = 100,
    stats: Optional[Dict[str, int]] = None,
) -> Placement:
    """Iteratively shrink a Single placement (close + merge moves).

    Returns a placement with ``n_replicas`` less than or equal to the
    input's.  The input is not modified.  A supplied ``stats`` dict
    receives the number of improvement ``rounds`` executed.
    """
    tree = instance.tree
    W = instance.capacity
    assign: Dict[int, int] = {}
    for a in placement.iter_assignments():
        assign[a.client] = a.server

    load: Dict[int, int] = {s: 0 for s in placement.replicas}
    for c, s in assign.items():
        load[s] = load.get(s, 0) + tree.requests(c)

    def apply_merge() -> bool:
        # Best-improvement: among all feasible pair merges, pick the one
        # whose common target is deepest — shallow (near-root) merges
        # burn shared capacity that deeper sibling pairs may need.
        servers = sorted(load, key=lambda s: load[s])
        best = None  # (depth, s1, s2, target, combined)
        for i in range(len(servers)):
            for j in range(i + 1, len(servers)):
                s1, s2 = servers[i], servers[j]
                combined = load[s1] + load[s2]
                if combined > W:
                    continue
                moved = [c for c, s in assign.items() if s in (s1, s2)]
                for target in _common_targets(instance, moved):
                    resident = (
                        load.get(target, 0) if target not in (s1, s2) else 0
                    )
                    if resident + combined > W:
                        continue
                    depth = tree.depth(target)
                    if best is None or depth > best[0]:
                        best = (depth, s1, s2, target, combined)
                    break  # _common_targets is deepest-first
        if best is None:
            return False
        _depth, s1, s2, target, combined = best
        for c in [c for c, s in assign.items() if s in (s1, s2)]:
            assign[c] = target
        del load[s1]
        del load[s2]
        load[target] = load.get(target, 0) + combined
        return True

    rounds = 0
    for _round in range(max_rounds):
        rounds += 1
        improved = False
        # Try closing the least-loaded replicas first.
        for victim in sorted(load, key=lambda s: load[s]):
            if load[victim] == 0:
                del load[victim]
                improved = True
                break
            re = _try_close(instance, victim, load, assign)
            if re is not None:
                for c, s in re.items():
                    assign[c] = s
                    load[s] += tree.requests(c)
                del load[victim]
                improved = True
                break
        if not improved:
            improved = apply_merge()
        if not improved:
            break

    if stats is not None:
        stats["rounds"] = rounds

    assignments = {(c, s): tree.requests(c) for c, s in assign.items()}
    return Placement(load.keys(), assignments)
