"""Placement algorithms: the paper's three algorithms, exact solvers,
baseline heuristics, feasibility oracles and local search."""

from .exact import exact_multiple, exact_optimal, exact_single
from .feasibility import eligible_map, multiple_assignment, single_assignment
from .greedy import local_placement, multiple_greedy, single_greedy_packing
from .local_search import improve_single
from .multiple_bin import multiple_bin
from .multiple_nod_dp import multiple_nod_dp
from .single_gen import single_gen
from .single_nod import single_nod
from .single_push import single_nod_bestfit, single_push

__all__ = [
    "single_gen",
    "single_nod",
    "single_nod_bestfit",
    "single_push",
    "multiple_bin",
    "multiple_nod_dp",
    "exact_single",
    "exact_multiple",
    "exact_optimal",
    "multiple_assignment",
    "single_assignment",
    "eligible_map",
    "local_placement",
    "single_greedy_packing",
    "multiple_greedy",
    "improve_single",
]
