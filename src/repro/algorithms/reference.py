"""Pre-rewrite object-graph solver baselines.

The hot loops of ``multiple-nod-dp``, ``single-nod`` and
``multiple-greedy`` were rewritten onto the flat-array substrate
(:mod:`repro.core.arrays`).  This module preserves their original
pointer-walking formulations **verbatim** for two purposes:

1. **Equivalence oracle** — ``tests/test_arrays.py`` property-tests
   that the flat-path solvers return bit-identical placements to these
   references over the randomized ``tree_instances`` strategy.
2. **Performance baseline** — ``repro bench`` times flat vs reference
   on the pinned corpus and records the speedup in every
   ``BENCH_*.json`` snapshot (see ``docs/performance.md``).

None of these register with the solver registry: they are baselines,
not production entry points.  Do not "fix" or optimise them — their
whole value is staying exactly what the registered solvers used to be.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import InfeasibleInstanceError, PolicyError
from ..core.instance import ProblemInstance
from ..core.placement import Placement

__all__ = [
    "multiple_nod_dp_reference",
    "single_nod_reference",
    "multiple_greedy_reference",
]

_INF = float("inf")


def _min_plus(
    a: List[float], b: List[float], cap: int
) -> Tuple[List[float], List[Optional[int]]]:
    """Quadratic min-plus convolution (the original DP kernel)."""
    n = min(len(a) + len(b) - 1, cap + 1)
    out = [_INF] * n
    arg: List[Optional[int]] = [None] * n
    for j, aj in enumerate(a):
        if aj == _INF or j >= n:
            continue
        hi = min(len(b), n - j)
        for k in range(hi):
            val = aj + b[k]
            if val < out[j + k]:
                out[j + k] = val
                arg[j + k] = j
    return out, arg


def multiple_nod_dp_reference(instance: ProblemInstance) -> Placement:
    """The original object-graph Multiple-NoD DP (optimal)."""
    if instance.has_distance_constraint:
        raise PolicyError(
            "multiple_nod_dp solves the NoD variants only; use "
            "exact_multiple for distance-constrained instances"
        )
    tree = instance.tree
    W = instance.capacity
    root = tree.root

    n = len(tree)
    anc_count = [0] * n
    for v in tree.topological_order():
        if v != root:
            anc_count[v] = anc_count[tree.parent(v)] + 1

    g: List[List[float]] = [[] for _ in range(n)]
    conv_args: List[List[Tuple[int, List[Optional[int]]]]] = [
        [] for _ in range(n)
    ]
    pool_tables: List[List[float]] = [[] for _ in range(n)]
    absorb_from: List[List[Optional[int]]] = [[] for _ in range(n)]

    subtree_demand = [0] * n
    for v in tree.postorder():
        subtree_demand[v] = tree.requests(v) + sum(
            subtree_demand[c] for c in tree.children(v)
        )

    for v in tree.postorder():
        u_cap = min(subtree_demand[v], W * anc_count[v])
        if tree.is_leaf(v):
            r = tree.requests(v)
            table = []
            for u in range(u_cap + 1):
                if u >= r:
                    table.append(0.0)
                elif r - u <= W:
                    table.append(1.0)
                else:
                    table.append(_INF)
            g[v] = table
            continue

        pool_cap = min(subtree_demand[v], W * (anc_count[v] + 1))
        pool: List[float] = [0.0]
        args: List[Tuple[int, List[Optional[int]]]] = []
        for child in tree.children(v):
            pool, arg = _min_plus(g[child], pool, pool_cap)
            args.append((child, arg))
        conv_args[v] = args
        pool_tables[v] = pool

        table = [_INF] * (u_cap + 1)
        chose: List[Optional[int]] = [None] * (u_cap + 1)
        for u in range(u_cap + 1):
            if u < len(pool) and pool[u] < table[u]:
                table[u] = pool[u]
                chose[u] = None
            hi = min(u + W, len(pool) - 1)
            for U in range(u + 1, hi + 1):
                val = pool[U] + 1.0
                if val < table[u]:
                    table[u] = val
                    chose[u] = U
        g[v] = table
        absorb_from[v] = chose

    if not g[root] or g[root][0] == _INF:  # pragma: no cover - defensive
        raise PolicyError("DP failed to cover the demand")

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}
    forward: Dict[int, int] = {root: 0}
    stack = [root]
    while stack:
        v = stack.pop()
        u = forward[v]
        if tree.is_leaf(v):
            if u < tree.requests(v):
                replicas.append(v)
            continue
        U = u
        src = absorb_from[v][u]
        if src is not None:
            replicas.append(v)
            U = src
        remaining = U
        for child, arg in reversed(conv_args[v]):
            take = arg[remaining]
            assert take is not None
            forward[child] = take
            remaining -= take
            stack.append(child)
        assert remaining == 0

    from .feasibility import multiple_assignment

    assign = multiple_assignment(instance, replicas)
    if assign is None:  # pragma: no cover - contradicts DP feasibility
        raise PolicyError("DP replica set failed flow verification")
    used = set(replicas)
    for (c, s) in assign:
        used.add(s)
    assignments = dict(assign)
    return Placement(used, assignments)


# ----------------------------------------------------------------------
@dataclass
class _Entry:
    node: int
    demand: int
    bundle: List[Tuple[int, int]] = field(default_factory=list)


def single_nod_reference(instance: ProblemInstance) -> Placement:
    """The original object-graph Algorithm 2 (Single-NoD greedy)."""
    if instance.has_distance_constraint:
        raise PolicyError(
            "single-nod only solves the NoD variants; use single_gen for "
            "instances with a distance constraint"
        )
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"a client demands {tree.max_request} > W={W}; "
            "no Single placement exists"
        )

    replicas: List[int] = []
    assignments: Dict[Tuple[int, int], int] = {}

    def open_replica(at: int, entries: List[_Entry]) -> None:
        replicas.append(at)
        for e in entries:
            for client, amount in e.bundle:
                assignments[(client, at)] = (
                    assignments.get((client, at), 0) + amount
                )

    n = len(tree)
    root = tree.root
    inbox: List[List[_Entry]] = [[] for _ in range(n)]
    aggregate: List[_Entry] = [None] * n  # type: ignore[list-item]

    for j in tree.postorder():
        if tree.is_leaf(j):
            r = tree.requests(j)
            if j == root:
                if r > 0:
                    open_replica(j, [_Entry(j, r, [(j, r)])])
                continue
            aggregate[j] = _Entry(j, r, [(j, r)]) if r > 0 else None
            continue

        entries: List[_Entry] = list(inbox[j])
        for jp in tree.children(j):
            agg = aggregate[jp]
            if agg is not None and agg.demand > 0:
                entries.append(agg)

        total = sum(e.demand for e in entries)

        if total > W:
            entries.sort(key=lambda e: e.demand)
            packed: List[_Entry] = []
            acc = 0
            k = 0
            overflow: _Entry = None  # type: ignore[assignment]
            while k < len(entries):
                if acc + entries[k].demand > W:
                    overflow = entries[k]
                    k += 1
                    break
                acc += entries[k].demand
                packed.append(entries[k])
                k += 1
            open_replica(j, packed)
            open_replica(overflow.node, [overflow])
            leftovers = entries[k:]
            if j != root:
                inbox[tree.parent(j)].extend(leftovers)
            else:
                for e in leftovers:
                    open_replica(e.node, [e])
            aggregate[j] = None
        else:
            if j == root:
                if total > 0:
                    merged = _Entry(j, total, [])
                    for e in entries:
                        merged.bundle.extend(e.bundle)
                    open_replica(root, [merged])
            else:
                if total > 0:
                    merged = _Entry(j, total, [])
                    for e in entries:
                        merged.bundle.extend(e.bundle)
                    aggregate[j] = merged
                else:
                    aggregate[j] = None

    return Placement(replicas, assignments)


# ----------------------------------------------------------------------
def multiple_greedy_reference(instance: ProblemInstance) -> Placement:
    """The original object-graph any-arity Multiple heuristic."""
    tree = instance.tree
    W = instance.capacity
    if tree.max_request > W:
        raise InfeasibleInstanceError(
            f"multiple_greedy requires r_i <= W (max r_i = "
            f"{tree.max_request}, W = {W})"
        )
    dmax = math.inf if instance.dmax is None else float(instance.dmax)

    n = len(tree)
    root = tree.root
    in_R = [False] * n
    assignments: Dict[Tuple[int, int], int] = {}
    pending: List[List[Tuple[float, int, int]]] = [[] for _ in range(n)]

    def serve(at: int, triples: List[Tuple[float, int, int]]) -> None:
        in_R[at] = True
        for (_d, w, i) in triples:
            if w > 0:
                assignments[(i, at)] = assignments.get((i, at), 0) + w

    for j in tree.postorder():
        if tree.is_leaf(j):
            r = tree.requests(j)
            if r == 0:
                continue
            if j == root or tree.delta(j) > dmax:
                serve(j, [(0.0, r, j)])
            else:
                pending[j] = [(0.0, r, j)]
            continue

        temp: List[Tuple[float, int, int]] = []
        for child in tree.children(j):
            dc = tree.delta(child)
            temp.extend((d + dc, w, i) for (d, w, i) in pending[child])
            pending[child] = []
        if not temp:
            continue
        temp.sort(key=lambda t: -t[0])
        wtot = sum(w for (_d, w, _i) in temp)
        is_root = j == root

        if is_root or temp[0][0] + tree.delta(j) > dmax or wtot > W:
            absorbed: List[Tuple[float, int, int]] = []
            wproc = 0
            k = 0
            while k < len(temp) and wproc < W:
                d, w, i = temp[k]
                take = min(w, W - wproc)
                absorbed.append((d, take, i))
                if take < w:
                    temp[k] = (d, w - take, i)
                else:
                    k += 1
                wproc += take
            serve(j, absorbed)
            temp = temp[k:]

        if temp and (is_root or temp[0][0] + tree.delta(j) > dmax):
            stuck: List[Tuple[float, int, int]] = []
            moving: List[Tuple[float, int, int]] = []
            for (d, w, i) in temp:
                if is_root or d + tree.delta(j) > dmax:
                    stuck.append((d, w, i))
                else:
                    moving.append((d, w, i))
            for (d, w, i) in stuck:
                serve(i, [(0.0, w, i)])
            temp = moving
        pending[j] = temp

    replicas = [v for v in range(n) if in_R[v]]
    return Placement(replicas, assignments)
