"""Spanning-tree extraction: general graphs → distribution trees.

Turns a general weighted graph with per-vertex demands into a
:class:`~repro.core.instance.ProblemInstance`:

1. compute the shortest-path tree from the chosen root (Dijkstra) — the
   standard "good spanning tree" of the literature the paper cites:
   client-to-root distances in the tree equal graph distances;
2. renumber vertices so the root is node 0 and parents precede
   children;
3. demanding vertices that end up internal get a zero-distance *client
   stub* leaf (the model attaches requests to leaves only; a replica at
   the original vertex serves the stub at distance 0, so optimal values
   are unaffected).

Returns the instance plus the graph-vertex → client-node mapping so
placements can be projected back onto the original network.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

from ..core.errors import InvalidInstanceError
from ..core.instance import ProblemInstance
from ..core.policies import Policy
from ..core.tree import NO_PARENT, Tree
from .weighted_graph import WeightedGraph, dijkstra

__all__ = ["extract_spanning_instance"]


def extract_spanning_instance(
    graph: WeightedGraph,
    root: int,
    demands: Mapping[int, int],
    *,
    capacity: int,
    dmax: Optional[float] = None,
    policy: Policy = Policy.SINGLE,
    name: str = "",
) -> Tuple[ProblemInstance, Dict[int, int]]:
    """Build a tree instance from a general graph (see module docs).

    ``demands`` maps graph vertices to request counts; vertices absent
    or mapped to 0 issue no requests.  Raises
    :class:`InvalidInstanceError` if a demanding vertex is unreachable
    from the root.
    """
    dist, parent = dijkstra(graph, root)
    for v, r in demands.items():
        if r > 0 and math.isinf(dist[v]):
            raise InvalidInstanceError(
                f"vertex {v} has demand {r} but is unreachable from the root"
            )

    # Keep every vertex reachable from the root (unreachable zero-demand
    # vertices are dropped).
    keep = [v for v in range(graph.n) if not math.isinf(dist[v])]
    # BFS order from the root so parents precede children.
    order = [root]
    children: Dict[int, list] = {v: [] for v in keep}
    for v in keep:
        if v != root:
            children[parent[v]].append(v)
    for v in order:
        order.extend(children[v])

    node_of: Dict[int, int] = {v: k for k, v in enumerate(order)}
    parents = [NO_PARENT] * len(order)
    deltas = [math.inf] * len(order)
    requests = [0] * len(order)
    for v in order:
        if v != root:
            parents[node_of[v]] = node_of[parent[v]]
            deltas[node_of[v]] = dist[v] - dist[parent[v]]

    client_of: Dict[int, int] = {}
    extra_parents = []
    extra_deltas = []
    extra_requests = []
    next_id = len(order)
    for v in keep:
        r = int(demands.get(v, 0))
        if r <= 0:
            continue
        if children[v]:
            # Internal vertex: attach a zero-distance client stub.
            extra_parents.append(node_of[v])
            extra_deltas.append(0.0)
            extra_requests.append(r)
            client_of[v] = next_id
            next_id += 1
        else:
            requests[node_of[v]] = r
            client_of[v] = node_of[v]

    tree = Tree(
        parents + extra_parents,
        deltas + extra_deltas,
        requests + extra_requests,
    )
    inst = ProblemInstance(
        tree, capacity, dmax, policy, name=name or "spanning-tree"
    )
    return inst, client_of
