"""Undirected weighted graphs and shortest paths.

The paper (Section 1) notes that replica placement on *general* graphs
is usually handled by first extracting a "good" spanning tree and then
placing replicas on the tree.  This package provides that front end: a
plain adjacency-list graph, Dijkstra single-source shortest paths, and
the shortest-path-tree extraction in :mod:`repro.graphs.spanning`.

Implemented from scratch (binary-heap Dijkstra with lazy deletion) and
cross-checked against ``networkx`` in the test suite.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, List, Tuple

__all__ = ["WeightedGraph", "dijkstra"]


class WeightedGraph:
    """Undirected graph with non-negative edge weights."""

    __slots__ = ("n", "_adj")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("graph needs at least one vertex")
        self.n = n
        self._adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        if u == v:
            raise ValueError("self-loops are not allowed")
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self._adj[u].append((v, float(weight)))
        self._adj[v].append((u, float(weight)))

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        """``(neighbor, weight)`` pairs of ``u``."""
        return list(self._adj[u])

    @property
    def n_edges(self) -> int:
        return sum(len(a) for a in self._adj) // 2

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[Tuple[int, int, float]]
    ) -> "WeightedGraph":
        g = cls(n)
        for u, v, w in edges:
            g.add_edge(u, v, w)
        return g


def dijkstra(
    graph: WeightedGraph, source: int
) -> Tuple[List[float], List[int]]:
    """Single-source shortest paths.

    Returns ``(dist, parent)``: ``dist[v]`` is the shortest distance
    from ``source`` (``inf`` if unreachable), ``parent[v]`` the
    predecessor on a shortest path (``-1`` for the source and
    unreachable vertices).
    """
    n = graph.n
    dist: List[float] = [math.inf] * n
    parent: List[int] = [-1] * n
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = [False] * n
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, w in graph.neighbors(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent
