"""General-graph front end: Dijkstra + spanning-tree extraction."""

from .spanning import extract_spanning_instance
from .weighted_graph import WeightedGraph, dijkstra

__all__ = ["WeightedGraph", "dijkstra", "extract_spanning_instance"]
